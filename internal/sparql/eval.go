package sparql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/lodviz/lodviz/internal/explain"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// cancelCheckInterval is how many bindings a probe loop processes between
// context checks: coarse enough that the check is free on the hot path, fine
// enough that a cancelled query stops within microseconds.
const cancelCheckInterval = 256

// engine evaluates parsed queries against a store.
type engine struct {
	// ctx bounds the evaluation; the probe loops poll it so a cancelled or
	// timed-out query stops mid-scan instead of running to completion.
	ctx context.Context
	st  Source
	// par is the BGP worker count; <=1 evaluates sequentially.
	par int
	// sem is the engine-wide budget of extra worker slots (par-1 tokens),
	// shared by nested parMap calls so total fan-out stays bounded.
	sem chan struct{}
	// noReorder disables cost-based join reordering (tests compare the
	// naive textual order against the planned order).
	noReorder bool
	// noIDJoin forces the term-space hash path for triple-pattern runs even
	// when the source is an IDSource (differential tests compare it against
	// the dictionary-ID path).
	noIDJoin bool
	// svc evaluates SERVICE clauses; nil means federation is not wired.
	svc ServiceEvaluator
	// met receives aggregate counters; nil (the common case) costs one
	// pointer check per flush site.
	met *Metrics
	// trace receives the execution span tree; nil disables tracing. exec is
	// the "execute" span pattern stages attach under (nil = trace root).
	trace *explain.Trace
	exec  *explain.Span
	// cards lazily caches the store's per-predicate cardinality table for
	// the duration of one query; cardsOnce makes the fetch safe from
	// concurrent worker goroutines.
	cards     map[rdf.IRI]store.PredCardinality
	cardsOnce sync.Once
}

// evalGroup evaluates a group graph pattern, extending each input binding.
func (e *engine) evalGroup(g *Group, input []Binding) ([]Binding, error) {
	elems := g.Elems
	if !e.noReorder {
		elems = e.reorderTriplePatterns(elems)
		e.tracePlan(elems)
	}
	return e.evalElems(elems, g.Filters, input)
}

// tracePlan records the planned pattern order as a "plan" span. Only groups
// containing at least two patterns are recorded — a single pattern has no
// join order worth explaining, and OPTIONAL's per-binding inner groups
// would otherwise flood the trace.
func (e *engine) tracePlan(elems []GroupElem) {
	if e.trace == nil {
		return
	}
	var pats []string
	for _, el := range elems {
		if tp, ok := el.(TriplePattern); ok {
			pats = append(pats, patternString(tp))
		}
	}
	if len(pats) < 2 {
		return
	}
	sp := e.trace.Add(e.exec, "plan")
	sp.Set(strings.Join(pats, " . "), "", 0, 0, time.Time{})
}

// nodeString renders a pattern position: "?v" for variables, the term's
// lexical form for constants.
func nodeString(n Node) string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// patternString renders a triple pattern for trace details.
func patternString(tp TriplePattern) string {
	return nodeString(tp.S) + " " + nodeString(tp.P) + " " + nodeString(tp.O)
}

// evalElems evaluates an already-planned element sequence plus the group's
// filters. The streaming driver calls it directly with the tail of a
// reordered group so batched evaluation follows the exact plan the
// materializing path would use (re-planning the tail in isolation could
// pick a different join order and therefore a different row order).
func (e *engine) evalElems(elems []GroupElem, filters []Expr, input []Binding) ([]Binding, error) {
	cur := input
	for i := 0; i < len(elems); i++ {
		if err := e.cancelled(); err != nil {
			return nil, err
		}
		var err error
		switch el := elems[i].(type) {
		case TriplePattern:
			// Gather the maximal run of consecutive triple patterns: the run
			// evaluates as one unit so the ID-space executor (idjoin.go) can
			// keep intermediate rows dictionary-encoded across the joins and
			// decode terms once at the end.
			run := []TriplePattern{el}
			for i+1 < len(elems) {
				next, ok := elems[i+1].(TriplePattern)
				if !ok {
					break
				}
				run = append(run, next)
				i++
			}
			cur, err = e.evalPatternRun(run, cur)
		case SubGroup:
			cur, err = e.evalGroup(el.Inner, cur)
		case Optional:
			cur, err = e.evalOptional(el, cur)
		case Union:
			cur, err = e.evalUnion(el, cur)
		case Bind:
			cur, err = e.evalBind(el, cur)
		case Values:
			cur = evalValues(el, cur)
		case Service:
			cur, err = e.evalService(el, cur)
		default:
			err = fmt.Errorf("sparql: unknown group element %T", el)
		}
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			break
		}
	}
	// Group filters apply to the whole group's solutions.
	for _, f := range filters {
		filtered := cur[:0:0]
		for _, b := range cur {
			ok, err := evalBool(f, b)
			if err == nil && ok {
				filtered = append(filtered, b)
			}
		}
		cur = filtered
	}
	return cur, nil
}

// reorderTriplePatterns greedily orders runs of triple patterns by estimated
// cost: at each step it picks the pattern with the smallest expected fan-out
// given the variables already bound, so `?s :special "yes"` beats
// `?s rdf:type :Item`, and a pattern joining on an already-bound variable
// beats an unconstrained scan, regardless of author order. Estimates combine
// the store's exact index-range counts over the constant positions with the
// per-predicate cardinality table (store.Cardinalities) for join positions.
// Non-pattern elements keep their positions.
func (e *engine) reorderTriplePatterns(elems []GroupElem) []GroupElem {
	out := make([]GroupElem, 0, len(elems))
	bound := map[string]bool{}
	i := 0
	for i < len(elems) {
		tp, ok := elems[i].(TriplePattern)
		if !ok {
			collectVars(elems[i], bound)
			out = append(out, elems[i])
			i++
			continue
		}
		// Collect the contiguous run of triple patterns.
		run := []TriplePattern{tp}
		j := i + 1
		for j < len(elems) {
			next, ok := elems[j].(TriplePattern)
			if !ok {
				break
			}
			run = append(run, next)
			j++
		}
		// Base estimates over the constant positions are independent of
		// the bound set; compute them once per run, not once per greedy
		// step.
		bases := make([]float64, len(run))
		for k, cand := range run {
			bases[k] = float64(e.estimate(cand))
		}
		// Greedy selection: repeatedly pick the cheapest pattern given
		// the variables bound so far. Ties go to the more-bound pattern,
		// then to textual order (stable across runs).
		for len(run) > 0 {
			best := 0
			bestCost := e.fanoutWithBase(run[0], bases[0], bound)
			bestScore := patternScore(run[0], bound)
			for k := 1; k < len(run); k++ {
				c := e.fanoutWithBase(run[k], bases[k], bound)
				s := patternScore(run[k], bound)
				if c < bestCost || (c == bestCost && s > bestScore) {
					best, bestCost, bestScore = k, c, s
				}
			}
			chosen := run[best]
			run = append(run[:best], run[best+1:]...)
			bases = append(bases[:best], bases[best+1:]...)
			out = append(out, chosen)
			for _, n := range []Node{chosen.S, chosen.P, chosen.O} {
				if n.IsVar() {
					bound[n.Var] = true
				}
			}
		}
		i = j
	}
	return out
}

// estimate returns the store's cardinality estimate for the pattern's
// constant positions.
func (e *engine) estimate(tp TriplePattern) int {
	var pat store.Pattern
	if !tp.S.IsVar() {
		pat.S = tp.S.Term
	}
	if !tp.P.IsVar() {
		pat.P = tp.P.Term
	}
	if !tp.O.IsVar() {
		pat.O = tp.O.Term
	}
	return e.st.EstimateCount(pat)
}

// estimateFanout estimates how many solutions evaluating tp produces per
// input binding, given the variables bound by earlier elements. The base is
// the exact index-range count over the constant positions; each variable
// position that is already bound by a join divides the base by that
// position's distinct-value count (per-predicate when the predicate is
// constant, the dictionary size as an optimistic fallback otherwise), since a
// concrete join value selects ~1/distinct of the range.
func (e *engine) estimateFanout(tp TriplePattern, bound map[string]bool) float64 {
	return e.fanoutWithBase(tp, float64(e.estimate(tp)), bound)
}

// fanoutWithBase is estimateFanout with the constant-position base estimate
// supplied by the caller (the reorder loop caches it per run).
func (e *engine) fanoutWithBase(tp TriplePattern, base float64, bound map[string]bool) float64 {
	if base == 0 {
		return 0
	}
	var card store.PredCardinality
	haveCard := false
	if !tp.P.IsVar() {
		if p, ok := tp.P.Term.(rdf.IRI); ok {
			card, haveCard = e.allCards()[p]
		}
	}
	div := func(perPred int) float64 {
		if haveCard && perPred > 0 {
			return float64(perPred)
		}
		if n := e.st.NumTerms(); n > 0 {
			return float64(n)
		}
		return 1
	}
	est := base
	if tp.S.IsVar() && bound[tp.S.Var] {
		est /= div(card.DistinctSubjects)
	}
	if tp.O.IsVar() && bound[tp.O.Var] {
		est /= div(card.DistinctObjects)
	}
	if tp.P.IsVar() && bound[tp.P.Var] {
		// No per-position stat for predicates; assume they are few.
		est /= float64(len(e.allCards()) + 1)
	}
	return est
}

// allCards returns the per-predicate cardinality table, fetching it once per
// query.
func (e *engine) allCards() map[rdf.IRI]store.PredCardinality {
	e.cardsOnce.Do(func() { e.cards = e.st.Cardinalities() })
	return e.cards
}

func collectVars(el GroupElem, bound map[string]bool) {
	switch el := el.(type) {
	case Bind:
		bound[el.Var] = true
	case Values:
		for _, v := range el.Vars {
			bound[v] = true
		}
	case Service:
		collectBindableVars(el.Inner, bound)
	}
}

// patternScore is the reorder tie-breaker: how many positions are bound,
// weighted S > O > P to favor the store's cheapest index scans.
func patternScore(tp TriplePattern, bound map[string]bool) int {
	score := 0
	isBound := func(n Node) bool { return !n.IsVar() || bound[n.Var] }
	if isBound(tp.S) {
		score += 4
	}
	if isBound(tp.O) {
		score += 2
	}
	if isBound(tp.P) {
		score++
	}
	return score
}

// cancelled returns the context's error once the context is done, nil
// otherwise (and always nil for the background context).
func (e *engine) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// evalTriplePattern extends each binding with matches from the store. Large
// binding sets are partitioned into chunks and probed concurrently by the
// engine's worker pool; the index-sequenced merge keeps the output order
// identical to the sequential loop.
func (e *engine) evalTriplePattern(tp TriplePattern, input []Binding) ([]Binding, error) {
	return e.evalTriplePatternCap(tp, input, -1)
}

// evalTriplePatternCap is evalTriplePattern with a row budget: when the
// pattern is the query's final join stage, only the first cap rows of its
// output can reach the client, so chunks stop probing once they hold cap
// rows and the parallel merge skips chunks the committed prefix has already
// made unreachable. cap < 0 means unlimited.
func (e *engine) evalTriplePatternCap(tp TriplePattern, input []Binding, cap int) ([]Binding, error) {
	return e.parMapCap(input, cap, func(chunk []Binding, chunkCap int) ([]Binding, error) {
		return e.evalTriplePatternChunk(tp, chunk, chunkCap)
	})
}

// evalTriplePatternChunk is the sequential probe loop over one chunk,
// producing at most cap rows (cap < 0 = unlimited). It polls the engine
// context every cancelCheckInterval bindings, and inside a single large
// index scan every cancelCheckInterval matches, so even a one-pattern full
// scan honors cancellation.
func (e *engine) evalTriplePatternChunk(tp TriplePattern, input []Binding, cap int) ([]Binding, error) {
	var out []Binding
	var scanned int
	var stop error
	for i, b := range input {
		if cap >= 0 && len(out) >= cap {
			break
		}
		if i%cancelCheckInterval == 0 {
			if err := e.cancelled(); err != nil {
				return nil, err
			}
		}
		pat, vars := concretize(tp, b)
		e.st.ForEach(pat, func(t rdf.Triple) bool {
			scanned++
			if scanned%cancelCheckInterval == 0 {
				if err := e.cancelled(); err != nil {
					stop = err
					return false
				}
			}
			nb, ok := unify(b, vars, t)
			if ok {
				out = append(out, nb)
				if cap >= 0 && len(out) >= cap {
					return false
				}
			}
			return true
		})
		if stop != nil {
			return nil, stop
		}
	}
	e.met.addScan(scanned, len(out))
	return out, nil
}

// concretize substitutes bound variables into the pattern, returning the
// store pattern and the residual variable names per position (empty = bound).
func concretize(tp TriplePattern, b Binding) (store.Pattern, [3]string) {
	var pat store.Pattern
	var vars [3]string
	resolve := func(n Node) (rdf.Term, string) {
		if !n.IsVar() {
			return n.Term, ""
		}
		if t, ok := b[n.Var]; ok {
			return t, ""
		}
		return nil, n.Var
	}
	pat.S, vars[0] = resolve(tp.S)
	pat.P, vars[1] = resolve(tp.P)
	pat.O, vars[2] = resolve(tp.O)
	return pat, vars
}

// unify binds residual variables to the matched triple, handling repeated
// variables (?x ?p ?x) by requiring equal terms.
func unify(b Binding, vars [3]string, t rdf.Triple) (Binding, bool) {
	nb := b.clone()
	assign := func(name string, val rdf.Term) bool {
		if name == "" {
			return true
		}
		if prev, ok := nb[name]; ok {
			return prev == val
		}
		nb[name] = val
		return true
	}
	if !assign(vars[0], t.S) {
		return nil, false
	}
	if !assign(vars[1], rdf.Term(t.P)) {
		return nil, false
	}
	if !assign(vars[2], t.O) {
		return nil, false
	}
	return nb, true
}

// evalOptional implements left join: bindings that match the inner group are
// extended; the rest pass through unchanged. Each input binding's inner
// evaluation is independent, so large inputs fan out to the worker pool.
func (e *engine) evalOptional(opt Optional, input []Binding) ([]Binding, error) {
	return e.parMap(input, func(chunk []Binding) ([]Binding, error) {
		var out []Binding
		for _, b := range chunk {
			matched, err := e.evalGroup(opt.Inner, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(matched) > 0 {
				out = append(out, matched...)
			} else {
				out = append(out, b)
			}
		}
		return out, nil
	})
}

func (e *engine) evalUnion(u Union, input []Binding) ([]Binding, error) {
	left, err := e.evalGroup(u.Left, input)
	if err != nil {
		return nil, err
	}
	right, err := e.evalGroup(u.Right, input)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

func (e *engine) evalBind(bi Bind, input []Binding) ([]Binding, error) {
	out := make([]Binding, 0, len(input))
	for _, b := range input {
		if _, already := b[bi.Var]; already {
			return nil, fmt.Errorf("sparql: BIND target ?%s already bound", bi.Var)
		}
		nb := b.clone()
		if t, err := evalExpr(bi.Expr, b); err == nil {
			// An erroring BIND expression leaves the variable unbound.
			nb[bi.Var] = t
		}
		out = append(out, nb)
	}
	return out, nil
}

// evalValues joins the inline data block with the current solutions.
func evalValues(v Values, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		for _, row := range v.Rows {
			nb := b.clone()
			compatible := true
			for i, name := range v.Vars {
				if row[i] == nil {
					continue // UNDEF constrains nothing
				}
				if prev, ok := nb[name]; ok {
					if prev != row[i] {
						compatible = false
						break
					}
				} else {
					nb[name] = row[i]
				}
			}
			if compatible {
				out = append(out, nb)
			}
		}
	}
	return out
}
