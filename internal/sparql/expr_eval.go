package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Binding maps variable names to terms. Unbound variables are absent.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// errExpr signals an expression evaluation error; per SPARQL semantics a
// FILTER whose expression errors simply rejects the solution.
var errExpr = errors.New("sparql: expression error")

// evalExpr evaluates an expression against a binding.
func evalExpr(e Expr, b Binding) (rdf.Term, error) {
	switch ex := e.(type) {
	case ExVar:
		t, ok := b[ex.Name]
		if !ok {
			return nil, fmt.Errorf("%w: unbound variable ?%s", errExpr, ex.Name)
		}
		return t, nil
	case ExTerm:
		return ex.Term, nil
	case ExUnary:
		return evalUnary(ex, b)
	case ExBinary:
		return evalBinary(ex, b)
	case ExCall:
		return evalCall(ex, b)
	case ExAggregate:
		return nil, fmt.Errorf("%w: aggregate outside grouped query", errExpr)
	default:
		return nil, fmt.Errorf("%w: unknown expression %T", errExpr, e)
	}
}

// evalBool evaluates an expression to its effective boolean value.
func evalBool(e Expr, b Binding) (bool, error) {
	t, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	v, ok := rdf.EffectiveBoolean(t)
	if !ok {
		return false, fmt.Errorf("%w: no effective boolean value", errExpr)
	}
	return v, nil
}

func evalUnary(ex ExUnary, b Binding) (rdf.Term, error) {
	switch ex.Op {
	case "!":
		v, err := evalBool(ex.Expr, b)
		if err != nil {
			return nil, err
		}
		return rdf.NewBoolean(!v), nil
	case "-":
		t, err := evalExpr(ex.Expr, b)
		if err != nil {
			return nil, err
		}
		f, ok := numeric(t)
		if !ok {
			return nil, fmt.Errorf("%w: unary minus on non-numeric", errExpr)
		}
		return numResult(-f, t, t), nil
	default:
		return nil, fmt.Errorf("%w: unknown unary %q", errExpr, ex.Op)
	}
}

func evalBinary(ex ExBinary, b Binding) (rdf.Term, error) {
	switch ex.Op {
	case "||":
		// SPARQL logical-or: true if either side is true even if the other
		// errors.
		lv, lerr := evalBool(ex.Left, b)
		rv, rerr := evalBool(ex.Right, b)
		switch {
		case lerr == nil && rerr == nil:
			return rdf.NewBoolean(lv || rv), nil
		case lerr == nil && lv:
			return rdf.NewBoolean(true), nil
		case rerr == nil && rv:
			return rdf.NewBoolean(true), nil
		default:
			return nil, fmt.Errorf("%w: || operand error", errExpr)
		}
	case "&&":
		lv, lerr := evalBool(ex.Left, b)
		rv, rerr := evalBool(ex.Right, b)
		switch {
		case lerr == nil && rerr == nil:
			return rdf.NewBoolean(lv && rv), nil
		case lerr == nil && !lv:
			return rdf.NewBoolean(false), nil
		case rerr == nil && !rv:
			return rdf.NewBoolean(false), nil
		default:
			return nil, fmt.Errorf("%w: && operand error", errExpr)
		}
	}
	l, err := evalExpr(ex.Left, b)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(ex.Right, b)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "=", "!=", "<", ">", "<=", ">=":
		return evalComparison(ex.Op, l, r)
	case "+", "-", "*", "/":
		lf, lok := numeric(l)
		rf, rok := numeric(r)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: arithmetic on non-numeric", errExpr)
		}
		var v float64
		switch ex.Op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("%w: division by zero", errExpr)
			}
			v = lf / rf
		}
		return numResult(v, l, r), nil
	default:
		return nil, fmt.Errorf("%w: unknown operator %q", errExpr, ex.Op)
	}
}

func evalComparison(op string, l, r rdf.Term) (rdf.Term, error) {
	// RDF term equality handles IRIs and exact literals.
	if op == "=" || op == "!=" {
		eq, err := termsEqual(l, r)
		if err != nil {
			return nil, err
		}
		if op == "!=" {
			eq = !eq
		}
		return rdf.NewBoolean(eq), nil
	}
	ll, lok := l.(rdf.Literal)
	rl, rok := r.(rdf.Literal)
	if !lok || !rok {
		return nil, fmt.Errorf("%w: ordering comparison requires literals", errExpr)
	}
	if lf, ok := ll.Float(); ok {
		if rf, ok := rl.Float(); ok {
			return rdf.NewBoolean(cmpHolds(op, cmpFloat(lf, rf))), nil
		}
		return nil, fmt.Errorf("%w: numeric vs non-numeric comparison", errExpr)
	}
	if lt, ok := ll.Time(); ok {
		if rt, ok := rl.Time(); ok {
			c := 0
			if lt.Before(rt) {
				c = -1
			} else if lt.After(rt) {
				c = 1
			}
			return rdf.NewBoolean(cmpHolds(op, c)), nil
		}
		return nil, fmt.Errorf("%w: temporal vs non-temporal comparison", errExpr)
	}
	// Fall back to string comparison for stringish literals.
	return rdf.NewBoolean(cmpHolds(op, strings.Compare(ll.Lexical, rl.Lexical))), nil
}

// termsEqual implements SPARQL '=': value equality for literals with known
// value spaces, term equality otherwise.
func termsEqual(l, r rdf.Term) (bool, error) {
	if l == r {
		return true, nil
	}
	ll, lok := l.(rdf.Literal)
	rl, rok := r.(rdf.Literal)
	if !lok || !rok {
		return false, nil
	}
	if lf, ok := ll.Float(); ok {
		if rf, ok := rl.Float(); ok {
			return lf == rf, nil
		}
	}
	if lt, ok := ll.Time(); ok {
		if rt, ok := rl.Time(); ok {
			return lt.Equal(rt), nil
		}
	}
	return false, nil
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpHolds(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case ">":
		return c > 0
	case "<=":
		return c <= 0
	case ">=":
		return c >= 0
	}
	return false
}

func numeric(t rdf.Term) (float64, bool) {
	l, ok := t.(rdf.Literal)
	if !ok {
		return 0, false
	}
	return l.Float()
}

// numResult picks a numeric result datatype: integer when both operands are
// integers and the value is integral, double otherwise.
func numResult(v float64, l, r rdf.Term) rdf.Term {
	li, lok := l.(rdf.Literal)
	ri, rok := r.(rdf.Literal)
	if lok && rok {
		if _, ok1 := li.Int(); ok1 {
			if _, ok2 := ri.Int(); ok2 && v == math.Trunc(v) {
				return rdf.NewInteger(int64(v))
			}
		}
	}
	return rdf.NewDouble(v)
}

func evalCall(ex ExCall, b Binding) (rdf.Term, error) {
	// BOUND and COALESCE/IF treat argument errors specially.
	switch ex.Name {
	case "BOUND":
		v, ok := ex.Args[0].(ExVar)
		if !ok {
			return nil, fmt.Errorf("%w: BOUND requires a variable", errExpr)
		}
		_, bound := b[v.Name]
		return rdf.NewBoolean(bound), nil
	case "COALESCE":
		for _, a := range ex.Args {
			if t, err := evalExpr(a, b); err == nil {
				return t, nil
			}
		}
		return nil, fmt.Errorf("%w: all COALESCE branches errored", errExpr)
	case "IF":
		c, err := evalBool(ex.Args[0], b)
		if err != nil {
			return nil, err
		}
		if c {
			return evalExpr(ex.Args[1], b)
		}
		return evalExpr(ex.Args[2], b)
	}
	args := make([]rdf.Term, len(ex.Args))
	for i, a := range ex.Args {
		t, err := evalExpr(a, b)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}
	return applyBuiltin(ex.Name, args)
}

func applyBuiltin(name string, args []rdf.Term) (rdf.Term, error) {
	str := func(i int) (string, error) {
		switch t := args[i].(type) {
		case rdf.Literal:
			return t.Lexical, nil
		case rdf.IRI:
			return string(t), nil
		default:
			return "", fmt.Errorf("%w: %s: no string form", errExpr, name)
		}
	}
	num := func(i int) (float64, error) {
		f, ok := numeric(args[i])
		if !ok {
			return 0, fmt.Errorf("%w: %s: non-numeric argument", errExpr, name)
		}
		return f, nil
	}
	switch name {
	case "STR":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewLiteral(s), nil
	case "LANG":
		l, ok := args[0].(rdf.Literal)
		if !ok {
			return nil, fmt.Errorf("%w: LANG of non-literal", errExpr)
		}
		return rdf.NewLiteral(l.Lang), nil
	case "DATATYPE":
		l, ok := args[0].(rdf.Literal)
		if !ok {
			return nil, fmt.Errorf("%w: DATATYPE of non-literal", errExpr)
		}
		return l.Datatype, nil
	case "ISIRI", "ISURI":
		return rdf.NewBoolean(args[0].Kind() == rdf.KindIRI), nil
	case "ISBLANK":
		return rdf.NewBoolean(args[0].Kind() == rdf.KindBlank), nil
	case "ISLITERAL":
		return rdf.NewBoolean(args[0].Kind() == rdf.KindLiteral), nil
	case "ISNUMERIC":
		_, ok := numeric(args[0])
		return rdf.NewBoolean(ok), nil
	case "STRLEN":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewInteger(int64(len([]rune(s)))), nil
	case "UCASE":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewLiteral(strings.ToUpper(s)), nil
	case "LCASE":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewLiteral(strings.ToLower(s)), nil
	case "ABS":
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		return numResult(math.Abs(f), args[0], args[0]), nil
	case "CEIL":
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewInteger(int64(math.Ceil(f))), nil
	case "FLOOR":
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewInteger(int64(math.Floor(f))), nil
	case "ROUND":
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		return rdf.NewInteger(int64(math.Round(f))), nil
	case "YEAR", "MONTH", "DAY":
		l, ok := args[0].(rdf.Literal)
		if !ok {
			return nil, fmt.Errorf("%w: %s of non-literal", errExpr, name)
		}
		tm, ok := l.Time()
		if !ok {
			return nil, fmt.Errorf("%w: %s of non-temporal", errExpr, name)
		}
		switch name {
		case "YEAR":
			return rdf.NewInteger(int64(tm.Year())), nil
		case "MONTH":
			return rdf.NewInteger(int64(tm.Month())), nil
		default:
			return rdf.NewInteger(int64(tm.Day())), nil
		}
	case "REGEX":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		pat, err := str(1)
		if err != nil {
			return nil, err
		}
		if len(args) == 3 {
			flags, err := str(2)
			if err != nil {
				return nil, err
			}
			if strings.Contains(flags, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%w: bad regex: %v", errExpr, err)
		}
		return rdf.NewBoolean(re.MatchString(s)), nil
	case "STRSTARTS":
		a, err1 := str(0)
		p, err2 := str(1)
		if err1 != nil || err2 != nil {
			return nil, errExpr
		}
		return rdf.NewBoolean(strings.HasPrefix(a, p)), nil
	case "STRENDS":
		a, err1 := str(0)
		p, err2 := str(1)
		if err1 != nil || err2 != nil {
			return nil, errExpr
		}
		return rdf.NewBoolean(strings.HasSuffix(a, p)), nil
	case "CONTAINS":
		a, err1 := str(0)
		p, err2 := str(1)
		if err1 != nil || err2 != nil {
			return nil, errExpr
		}
		return rdf.NewBoolean(strings.Contains(a, p)), nil
	case "LANGMATCHES":
		tag, err1 := str(0)
		rng, err2 := str(1)
		if err1 != nil || err2 != nil {
			return nil, errExpr
		}
		if rng == "*" {
			return rdf.NewBoolean(tag != ""), nil
		}
		tag, rng = strings.ToLower(tag), strings.ToLower(rng)
		return rdf.NewBoolean(tag == rng || strings.HasPrefix(tag, rng+"-")), nil
	case "SUBSTR":
		s, err := str(0)
		if err != nil {
			return nil, err
		}
		start, err := num(1)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		// SPARQL SUBSTR is 1-based.
		from := int(start) - 1
		if from < 0 {
			from = 0
		}
		if from > len(runes) {
			from = len(runes)
		}
		to := len(runes)
		if len(args) == 3 {
			n, err := num(2)
			if err != nil {
				return nil, err
			}
			if t := from + int(n); t < to {
				to = t
			}
		}
		if to < from {
			to = from
		}
		return rdf.NewLiteral(string(runes[from:to])), nil
	case "REPLACE":
		s, err1 := str(0)
		pat, err2 := str(1)
		rep, err3 := str(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, errExpr
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%w: bad regex: %v", errExpr, err)
		}
		return rdf.NewLiteral(re.ReplaceAllString(s, rep)), nil
	case "CONCAT":
		var b strings.Builder
		for i := range args {
			s, err := str(i)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return rdf.NewLiteral(b.String()), nil
	default:
		return nil, fmt.Errorf("%w: unsupported builtin %s", errExpr, name)
	}
}
