package sparql

import (
	"github.com/lodviz/lodviz/internal/rdf"
)

func isAggregateName(kw string) bool {
	switch kw {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}

// builtinArity maps supported builtin functions to their min/max arity
// (max -1 = variadic).
var builtinArity = map[string][2]int{
	"BOUND": {1, 1}, "STR": {1, 1}, "LANG": {1, 1}, "DATATYPE": {1, 1},
	"ISIRI": {1, 1}, "ISURI": {1, 1}, "ISBLANK": {1, 1},
	"ISLITERAL": {1, 1}, "ISNUMERIC": {1, 1}, "STRLEN": {1, 1},
	"UCASE": {1, 1}, "LCASE": {1, 1}, "ABS": {1, 1}, "CEIL": {1, 1},
	"FLOOR": {1, 1}, "ROUND": {1, 1}, "YEAR": {1, 1}, "MONTH": {1, 1},
	"DAY": {1, 1}, "REGEX": {2, 3}, "STRSTARTS": {2, 2}, "STRENDS": {2, 2},
	"CONTAINS": {2, 2}, "LANGMATCHES": {2, 2}, "SUBSTR": {2, 3},
	"REPLACE": {3, 3}, "CONCAT": {1, -1}, "COALESCE": {1, -1}, "IF": {3, 3},
}

// parseExpr parses a full expression (|| level).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = ExBinary{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = ExBinary{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.tok.kind {
	case tEq:
		op = "="
	case tNeq:
		op = "!="
	case tLt:
		op = "<"
	case tGt:
		op = ">"
	case tLe:
		op = "<="
	case tGe:
		op = ">="
	default:
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return ExBinary{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		op := "+"
		if p.tok.kind == tMinus {
			op = "-"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = ExBinary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tStar || p.tok.kind == tSlash {
		op := "*"
		if p.tok.kind == tSlash {
			op = "/"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = ExBinary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ExUnary{Op: "!", Expr: e}, nil
	case tMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ExUnary{Op: "-", Expr: e}, nil
	case tPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tRParen)
	case tVar:
		e := ExVar{Name: p.tok.text}
		return e, p.advance()
	case tIRI:
		e := ExTerm{Term: rdf.IRI(p.tok.text)}
		return e, p.advance()
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return nil, err
		}
		return ExTerm{Term: iri}, p.advance()
	case tString:
		l, err := p.parseLiteralTail(p.tok.text)
		if err != nil {
			return nil, err
		}
		return ExTerm{Term: l}, nil
	case tInteger:
		e := ExTerm{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDInteger)}
		return e, p.advance()
	case tDecimal:
		e := ExTerm{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDDecimal)}
		return e, p.advance()
	case tDouble:
		e := ExTerm{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDDouble)}
		return e, p.advance()
	case tKeyword:
		kw := p.tok.text
		switch {
		case kw == "TRUE":
			return ExTerm{Term: rdf.NewBoolean(true)}, p.advance()
		case kw == "FALSE":
			return ExTerm{Term: rdf.NewBoolean(false)}, p.advance()
		case isAggregateName(kw):
			return p.parseAggregate(kw)
		default:
			if _, ok := builtinArity[kw]; ok {
				return p.parseCall(kw)
			}
			return nil, p.errf("unsupported function %s", kw)
		}
	default:
		return nil, p.errf("expected expression, found %v", p.tok.kind)
	}
}

func (p *parser) parseCall(name string) (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.tok.kind != tRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return nil, err
	}
	ar := builtinArity[name]
	if len(args) < ar[0] || (ar[1] >= 0 && len(args) > ar[1]) {
		return nil, p.errf("%s takes %d..%d arguments, got %d", name, ar[0], ar[1], len(args))
	}
	return ExCall{Name: name, Args: args}, nil
}

func (p *parser) parseAggregate(name string) (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tLParen); err != nil {
		return nil, err
	}
	agg := ExAggregate{Name: name, Separator: " "}
	if p.isKeyword("DISTINCT") {
		agg.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tStar {
		if name != "COUNT" {
			return nil, p.errf("* only valid in COUNT")
		}
		agg.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	// GROUP_CONCAT(?x ; SEPARATOR = ", ")
	if p.tok.kind == tSemicolon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("SEPARATOR"); err != nil {
			return nil, err
		}
		if err := p.expect(tEq); err != nil {
			return nil, err
		}
		if p.tok.kind != tString {
			return nil, p.errf("SEPARATOR requires a string")
		}
		agg.Separator = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return agg, p.expect(tRParen)
}
