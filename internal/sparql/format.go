package sparql

import (
	"strings"
)

// This file renders parsed query fragments back to SPARQL text. The
// federation layer uses it to ship a SERVICE clause's inner pattern to a
// remote endpoint: the pattern travels as a freshly generated, canonical
// query string, so two queries that parse to the same AST serialize
// identically (which also makes the remote-result cache key stable).

// FormatGroup renders a group graph pattern, braces included, as a single
// line of SPARQL. All constant terms are rendered in absolute form (full
// IRIs, typed literals), so the output is self-contained: it parses without
// any prologue.
func FormatGroup(g *Group) string {
	var b strings.Builder
	writeGroup(&b, g)
	return b.String()
}

func writeGroup(b *strings.Builder, g *Group) {
	b.WriteString("{ ")
	for _, el := range g.Elems {
		writeGroupElem(b, el)
		b.WriteByte(' ')
	}
	for _, f := range g.Filters {
		b.WriteString("FILTER (")
		writeExpr(b, f)
		b.WriteString(") ")
	}
	b.WriteString("}")
}

func writeGroupElem(b *strings.Builder, el GroupElem) {
	switch el := el.(type) {
	case TriplePattern:
		writeNode(b, el.S)
		b.WriteByte(' ')
		writeNode(b, el.P)
		b.WriteByte(' ')
		writeNode(b, el.O)
		b.WriteString(" .")
	case SubGroup:
		writeGroup(b, el.Inner)
	case Optional:
		b.WriteString("OPTIONAL ")
		writeGroup(b, el.Inner)
	case Union:
		writeGroup(b, el.Left)
		b.WriteString(" UNION ")
		writeGroup(b, el.Right)
	case Bind:
		b.WriteString("BIND(")
		writeExpr(b, el.Expr)
		b.WriteString(" AS ?")
		b.WriteString(el.Var)
		b.WriteString(")")
	case Values:
		writeValues(b, el)
	case Service:
		b.WriteString("SERVICE ")
		if el.Silent {
			b.WriteString("SILENT ")
		}
		b.WriteString("<" + el.Endpoint + "> ")
		writeGroup(b, el.Inner)
	}
}

func writeValues(b *strings.Builder, v Values) {
	b.WriteString("VALUES (")
	for i, name := range v.Vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("?" + name)
	}
	b.WriteString(") { ")
	for _, row := range v.Rows {
		b.WriteString("(")
		for i, t := range row {
			if i > 0 {
				b.WriteByte(' ')
			}
			if t == nil {
				b.WriteString("UNDEF")
			} else {
				b.WriteString(t.String())
			}
		}
		b.WriteString(") ")
	}
	b.WriteString("}")
}

func writeNode(b *strings.Builder, n Node) {
	if n.IsVar() {
		b.WriteString("?" + n.Var)
		return
	}
	b.WriteString(n.Term.String())
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case ExVar:
		b.WriteString("?" + e.Name)
	case ExTerm:
		b.WriteString(e.Term.String())
	case ExBinary:
		b.WriteString("(")
		writeExpr(b, e.Left)
		b.WriteString(" " + e.Op + " ")
		writeExpr(b, e.Right)
		b.WriteString(")")
	case ExUnary:
		b.WriteString(e.Op + "(")
		writeExpr(b, e.Expr)
		b.WriteString(")")
	case ExCall:
		b.WriteString(e.Name + "(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteString(")")
	case ExAggregate:
		b.WriteString(e.Name + "(")
		if e.Distinct {
			b.WriteString("DISTINCT ")
		}
		if e.Star {
			b.WriteString("*")
		} else if e.Arg != nil {
			writeExpr(b, e.Arg)
		}
		if e.Name == "GROUP_CONCAT" && e.Separator != " " {
			b.WriteString("; SEPARATOR = " + quoteString(e.Separator))
		}
		b.WriteString(")")
	}
}

// quoteString renders a SPARQL string literal with escapes.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// BindableVars collects the variables a group pattern can bind (triple
// patterns, BIND targets, VALUES columns, and nested groups — FILTER-only
// variables are excluded, since a FILTER never binds). The federation layer
// uses this to decide which local bindings are worth injecting into a remote
// subquery.
func BindableVars(g *Group) []string {
	set := map[string]bool{}
	collectBindableVars(g, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

func collectBindableVars(g *Group, set map[string]bool) {
	for _, el := range g.Elems {
		switch el := el.(type) {
		case TriplePattern:
			for _, n := range []Node{el.S, el.P, el.O} {
				if n.IsVar() {
					set[n.Var] = true
				}
			}
		case SubGroup:
			collectBindableVars(el.Inner, set)
		case Optional:
			collectBindableVars(el.Inner, set)
		case Union:
			collectBindableVars(el.Left, set)
			collectBindableVars(el.Right, set)
		case Bind:
			set[el.Var] = true
		case Values:
			for _, v := range el.Vars {
				set[v] = true
			}
		case Service:
			collectBindableVars(el.Inner, set)
		}
	}
}

// CertainVars collects the variables a group pattern binds in *every*
// solution it produces — the sound set for bind-join injection. A variable
// that is only optionally bound (OPTIONAL), bound in just one UNION branch,
// assigned by a BIND whose expression may error, or UNDEF in some VALUES
// row is excluded: constraining such a variable remotely could eliminate
// solutions that spec SERVICE semantics (evaluate remotely in isolation,
// join locally) would keep — or keep ones it would drop.
func CertainVars(g *Group) []string {
	set := map[string]bool{}
	collectCertainVars(g, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

func collectCertainVars(g *Group, set map[string]bool) {
	for _, el := range g.Elems {
		switch el := el.(type) {
		case TriplePattern:
			for _, n := range []Node{el.S, el.P, el.O} {
				if n.IsVar() {
					set[n.Var] = true
				}
			}
		case SubGroup:
			collectCertainVars(el.Inner, set)
		case Union:
			// Certain only when both branches bind it.
			left, right := map[string]bool{}, map[string]bool{}
			collectCertainVars(el.Left, left)
			collectCertainVars(el.Right, right)
			for v := range left {
				if right[v] {
					set[v] = true
				}
			}
		case Values:
			for i, v := range el.Vars {
				bound := len(el.Rows) > 0
				for _, row := range el.Rows {
					if row[i] == nil {
						bound = false
						break
					}
				}
				if bound {
					set[v] = true
				}
			}
			// Optional, Bind, Service: never certain.
		}
	}
}

// HasService reports whether the group contains a SERVICE clause at any
// nesting depth. The HTTP server uses it to route federated queries past
// the generation-keyed response cache.
func HasService(g *Group) bool {
	for _, el := range g.Elems {
		switch el := el.(type) {
		case Service:
			return true
		case SubGroup:
			if HasService(el.Inner) {
				return true
			}
		case Optional:
			if HasService(el.Inner) {
				return true
			}
		case Union:
			if HasService(el.Left) || HasService(el.Right) {
				return true
			}
		}
	}
	return false
}
