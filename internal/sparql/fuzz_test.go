package sparql

import (
	"context"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// FuzzParseQuery throws arbitrary byte strings at the SPARQL parser. The
// invariants: the parser never panics, and whatever parses also evaluates
// without panicking against a small store (the parse/eval boundary is where
// malformed ASTs would explode).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT ?s WHERE { ?s ?p ?o }",
		"SELECT * WHERE { ?s a <http://e/C> . ?s <http://e/p> ?v }",
		"ASK { <http://e/x> ?p ?o }",
		"PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p ex:o }",
		"SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 2",
		`SELECT ?s WHERE { ?s ?p "lit"@en }`,
		`SELECT ?s WHERE { ?s ?p "5"^^<http://www.w3.org/2001/XMLSchema#integer> }`,
		"SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING (COUNT(?o) > 1)",
		"SELECT ?s WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } }",
		"SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?s <http://e/q> ?v } FILTER(?o > 3) }",
		"SELECT ?s WHERE { ?s ?p ?o . BIND(?o + 1 AS ?v) } VALUES ?p { <http://e/p> }",
		"SELECT ?s WHERE { ?s ?p ?o } # trailing comment",
		"SELECT",
		"",
		"\x00\xff{{{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	st, err := store.Load([]rdf.Triple{
		{S: rdf.IRI("http://e/x"), P: rdf.IRI("http://e/p"), O: rdf.NewInteger(1)},
		{S: rdf.IRI("http://e/y"), P: rdf.IRI("http://e/p"), O: rdf.NewLiteral("v")},
		{S: rdf.IRI("http://e/x"), P: rdf.RDFType, O: rdf.IRI("http://e/C")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Whatever parsed must evaluate without panicking.
		_, _ = EvalCtx(context.Background(), st, q, Options{Parallelism: 1})
	})
}
