package sparql

import (
	"slices"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// ID-space evaluation of basic graph patterns. When the engine's source is an
// IDSource, a run of triple patterns is executed entirely over dictionary
// IDs: input bindings are encoded once into a flat uint32 arena, each pattern
// either merge-joins a sorted permutation run (equal-prefix joins), probes
// the indexes per row, or cross-joins one shared scan, and terms are decoded
// in one batch only when the run's survivors become Bindings. The output —
// rows and row order — is byte-identical to the term-space hash path
// (Options.NoIDJoin; differential tests compare the two): every strategy
// below emits, for each input row in input order, that row's matches in
// exactly the permutation order the per-row term-space scan would use.

const (
	// mergeScanFactor bounds when a merge join pays: scanning an index range
	// of est entries beats per-row binary-search probes only while
	// est <= rows * mergeScanFactor (a probe costs ~log n comparisons plus
	// cache misses; a merge pass costs ~1 sequential read per entry).
	mergeScanFactor = 64
	// idTailMax bounds the uncompacted-delta suffix a merge join rescans per
	// input row; a delta burst past it falls back to per-row probes rather
	// than turning the merge into rows × delta linear work.
	idTailMax = 256
)

// idRows is a column-compressed intermediate solution set: row r occupies
// ids[r*stride : (r+1)*stride] in slot order (0 = slot unbound in that row),
// and parents[r] indexes the input Binding the row descends from.
type idRows struct {
	stride  int
	ids     []store.ID
	parents []int32
}

func (r *idRows) n() int { return len(r.parents) }

func (r *idRows) row(i int) []store.ID { return r.ids[i*r.stride : (i+1)*r.stride] }

// idPos classifies one pattern position: a constant's dictionary ID, or the
// slot index of its variable.
type idPos struct {
	slot int // -1 for a constant
	id   store.ID
}

// evalPatternRun evaluates a maximal run of consecutive triple patterns.
// Non-ID sources and Options.NoIDJoin take the per-pattern term-space path;
// everything else runs the dictionary-ID pipeline.
func (e *engine) evalPatternRun(run []TriplePattern, input []Binding) ([]Binding, error) {
	src, ok := e.st.(IDSource)
	if !ok || e.noIDJoin {
		if e.met != nil {
			e.met.RunsHash.Inc()
		}
		return e.evalPatternRunHash(run, input)
	}
	if e.met != nil {
		e.met.RunsIDJoin.Inc()
	}
	return e.evalPatternRunIDs(src, run, input)
}

// evalPatternRunHash is the pre-existing term-space pipeline: one hash-probe
// stage per pattern.
func (e *engine) evalPatternRunHash(run []TriplePattern, input []Binding) ([]Binding, error) {
	cur := input
	for _, tp := range run {
		if err := e.cancelled(); err != nil {
			return nil, err
		}
		var start time.Time
		if e.trace != nil {
			start = time.Now()
		}
		before := len(cur)
		var err error
		cur, err = e.evalTriplePattern(tp, cur)
		if err != nil {
			return nil, err
		}
		if e.trace != nil {
			e.trace.Add(e.exec, "pattern").Set(patternString(tp), "hash", before, len(cur), start)
		}
		if len(cur) == 0 {
			break
		}
	}
	return cur, nil
}

func (e *engine) evalPatternRunIDs(src IDSource, run []TriplePattern, input []Binding) ([]Binding, error) {
	// Slot table: every variable any pattern in the run mentions.
	slotOf := map[string]int{}
	var slotVars []string
	for _, tp := range run {
		for _, n := range [3]Node{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				if _, ok := slotOf[n.Var]; !ok {
					slotOf[n.Var] = len(slotVars)
					slotVars = append(slotVars, n.Var)
				}
			}
		}
	}
	stride := len(slotVars)

	// Term→ID memo shared by the run (constants repeat across patterns,
	// input columns repeat across rows). 0 records a known-absent term.
	memo := map[rdf.Term]store.ID{}
	lookup := func(t rdf.Term) (store.ID, bool) {
		if id, ok := memo[t]; ok {
			return id, id != 0
		}
		id, ok := src.LookupTermID(t)
		if !ok {
			id = 0
		}
		memo[t] = id
		return id, ok
	}

	// Encode the input. A binding whose slot term is absent from the
	// dictionary can never survive the pattern mentioning that slot (every
	// slot is mentioned by some pattern in the run), so the row is dropped —
	// exactly when the term-space path would probe it to zero matches.
	rows := idRows{stride: stride, parents: make([]int32, 0, len(input))}
	if stride > 0 {
		rows.ids = make([]store.ID, 0, stride*len(input))
	}
	scratch := make([]store.ID, stride)
	for i, b := range input {
		clear(scratch)
		dead := false
		for s, v := range slotVars {
			t, bound := b[v]
			if !bound {
				continue
			}
			id, inDict := lookup(t)
			if !inDict {
				dead = true
				break
			}
			scratch[s] = id
		}
		if dead {
			continue
		}
		rows.ids = append(rows.ids, scratch...)
		rows.parents = append(rows.parents, int32(i))
	}

	// Per-slot binding state across the surviving rows: boundAll slots join
	// (their value keys a merge), fresh (!boundAny) slots are pure outputs,
	// mixed slots force the generic probe.
	boundAll := make([]bool, stride)
	boundAny := make([]bool, stride)
	for s := range boundAll {
		boundAll[s] = rows.n() > 0
	}
	for r := 0; r < rows.n(); r++ {
		for s, id := range rows.row(r) {
			if id == 0 {
				boundAll[s] = false
			} else {
				boundAny[s] = true
			}
		}
	}

	for _, tp := range run {
		if err := e.cancelled(); err != nil {
			return nil, err
		}
		if rows.n() == 0 {
			break
		}
		var start time.Time
		if e.trace != nil {
			start = time.Now()
		}
		before := rows.n()
		var strat string
		var err error
		rows, strat, err = e.evalOnePatternIDs(src, tp, rows, slotOf, boundAll, boundAny, lookup)
		if err != nil {
			return nil, err
		}
		if e.trace != nil {
			e.trace.Add(e.exec, "pattern").Set(patternString(tp), strat, before, rows.n(), start)
		}
		if e.met != nil {
			e.met.RowsOut.Add(uint64(rows.n()))
		}
		for _, n := range [3]Node{tp.S, tp.P, tp.O} {
			if n.IsVar() && rows.n() > 0 {
				s := slotOf[n.Var]
				boundAll[s], boundAny[s] = true, true
			}
		}
	}
	return decodeIDRows(src, rows, slotVars, input), nil
}

// evalOnePatternIDs extends rows by one pattern, picking the cheapest
// order-preserving strategy; the strategy chosen is returned for traces
// ("id-merge", "id-cross", "id-probe", or "id-empty" when a constant is
// absent from the dictionary).
func (e *engine) evalOnePatternIDs(src IDSource, tp TriplePattern, rows idRows, slotOf map[string]int, boundAll, boundAny []bool, lookup func(rdf.Term) (store.ID, bool)) (idRows, string, error) {
	var ps [3]idPos
	for i, n := range [3]Node{tp.S, tp.P, tp.O} {
		if n.IsVar() {
			ps[i] = idPos{slot: slotOf[n.Var]}
		} else {
			id, ok := lookup(n.Term)
			if !ok {
				return idRows{stride: rows.stride}, "id-empty", nil // constant not in dictionary: no triple matches
			}
			ps[i] = idPos{slot: -1, id: id}
		}
	}

	// Classify the pattern's variable slots against the current rows.
	repeated := false
	for i, p := range ps {
		if p.slot < 0 {
			continue
		}
		for j := 0; j < i; j++ {
			if ps[j].slot == p.slot {
				repeated = true
			}
		}
	}
	allFresh, mixed := true, false
	nBound, freshPositions, boundSlot := 0, 0, -1
	lead := store.PosAny
	positionOf := [3]store.Position{store.PosS, store.PosP, store.PosO}
	for i, p := range ps {
		if p.slot < 0 {
			continue
		}
		switch {
		case boundAll[p.slot]:
			allFresh = false
			nBound++
			boundSlot = p.slot
			lead = positionOf[i]
		case boundAny[p.slot]:
			allFresh = false
			mixed = true
		default:
			freshPositions++
		}
	}

	var cs, cp, co store.ID
	if ps[0].slot < 0 {
		cs = ps[0].id
	}
	if ps[1].slot < 0 {
		cp = ps[1].id
	}
	if ps[2].slot < 0 {
		co = ps[2].id
	}

	if allFresh {
		// No position constrains the rows: one shared scan crossed with
		// every row (repeated fresh variables filter inside idUnify).
		out, err := e.idScanCross(src, ps, cs, cp, co, rows)
		return out, "id-cross", err
	}
	if !mixed && !repeated && nBound >= 1 && freshPositions == 0 {
		// Existence merge: every variable slot is bound, so the pattern is
		// fully ground per row and matches at most one triple — emission
		// order is trivially the input row order, for any choice of lead.
		// One sorted scan over the constant mask replaces a per-row index
		// probe (and its lock acquisition); idUnify enforces the non-lead
		// bound slots.
		if est := src.EstimateCountIDs(cs, cp, co); est <= rows.n()*mergeScanFactor {
			for i, p := range ps {
				if p.slot < 0 || !boundAll[p.slot] {
					continue
				}
				out, ok, err := e.idMergeJoin(src, ps, cs, cp, co, p.slot, positionOf[i], rows)
				if err != nil || ok {
					return out, "id-merge", err
				}
			}
		}
	}
	if nBound == 1 && !mixed && !repeated && freshPositions > 0 &&
		// Ordering caveat: a bound predicate variable over an otherwise
		// unconstrained pattern would merge through PSO (sorted s,o) while
		// the term-space scan uses POS (sorted o,s) — the one lead/mask
		// combination whose per-key order differs. Probe keeps parity.
		!(lead == store.PosP && cs == 0 && co == 0) {
		if est := src.EstimateCountIDs(cs, cp, co); est <= rows.n()*mergeScanFactor {
			out, ok, err := e.idMergeJoin(src, ps, cs, cp, co, boundSlot, lead, rows)
			if err != nil || ok {
				return out, "id-merge", err
			}
		}
	}
	out, err := e.idProbe(src, ps, rows)
	return out, "id-probe", err
}

// idMergeJoin answers a single-join-variable pattern with one sorted range
// scan: ScanIDs materializes the matches ordered by the join position, the
// distinct row keys merge against that run in one pass, and each row then
// emits its key's span (plus delta-tail matches) — the same matches, in the
// same order, the per-row probe would produce. ok=false (no permutation for
// the lead, or an outsized delta tail) sends the caller to the probe path.
func (e *engine) idMergeJoin(src IDSource, ps [3]idPos, cs, cp, co store.ID, boundSlot int, lead store.Position, rows idRows) (idRows, bool, error) {
	scan, ok := src.ScanIDs(cs, cp, co, lead)
	if !ok {
		return idRows{}, false, nil
	}
	if len(scan.Tail) > idTailMax {
		return idRows{}, false, nil
	}
	keyOf := func(t store.IDTriple) store.ID {
		switch lead {
		case store.PosS:
			return t.S
		case store.PosP:
			return t.P
		default:
			return t.O
		}
	}

	keys := make([]store.ID, rows.n())
	sorted := true
	for r := range keys {
		keys[r] = rows.row(r)[boundSlot]
		if r > 0 && keys[r-1] > keys[r] {
			sorted = false
		}
	}
	uniq := slices.Clone(keys)
	if !sorted {
		// Rows that came out of an earlier merge or an index scan already
		// ascend by this slot; only genuinely shuffled inputs pay the sort.
		slices.Sort(uniq)
	}
	uniq = slices.Compact(uniq)

	// One linear merge: ascending distinct keys against the ascending run.
	// spans[j] is uniq[j]'s [lo,hi) window in Sorted; rows find theirs by
	// binary-searching uniq (cheaper than a hash map at these sizes).
	type span struct{ lo, hi int32 }
	spans := make([]span, len(uniq))
	i := 0
	for u, k := range uniq {
		for i < len(scan.Sorted) && keyOf(scan.Sorted[i]) < k {
			i++
		}
		lo := i
		for i < len(scan.Sorted) && keyOf(scan.Sorted[i]) == k {
			i++
		}
		spans[u] = span{int32(lo), int32(i)}
	}

	out := idRows{stride: rows.stride}
	scratch := make([]store.ID, rows.stride)
	steps := 0
	for r := 0; r < rows.n(); r++ {
		k := keys[r]
		u, _ := slices.BinarySearch(uniq, k)
		for _, m := range scan.Sorted[spans[u].lo:spans[u].hi] {
			steps++
			if steps%cancelCheckInterval == 0 {
				if err := e.cancelled(); err != nil {
					return idRows{}, true, err
				}
			}
			copy(scratch, rows.row(r))
			if idUnify(ps, scratch, m) {
				out.ids = append(out.ids, scratch...)
				out.parents = append(out.parents, rows.parents[r])
			}
		}
		for _, m := range scan.Tail {
			if keyOf(m) != k {
				continue
			}
			copy(scratch, rows.row(r))
			if idUnify(ps, scratch, m) {
				out.ids = append(out.ids, scratch...)
				out.parents = append(out.parents, rows.parents[r])
			}
		}
	}
	if e.met != nil {
		e.met.MatchesScanned.Add(uint64(steps))
	}
	return out, true, nil
}

// idScanCross answers a pattern none of whose variables are bound yet: scan
// the constant mask once, then cross the matches with every row. Identical to
// probing each row — every row's probe would walk the same range in the same
// order — at 1/rows the scan cost.
func (e *engine) idScanCross(src IDSource, ps [3]idPos, cs, cp, co store.ID, rows idRows) (idRows, error) {
	var matches []store.IDTriple
	scanned := 0
	var stop error
	src.ForEachID(cs, cp, co, func(t store.IDTriple) bool {
		scanned++
		if scanned%cancelCheckInterval == 0 {
			if err := e.cancelled(); err != nil {
				stop = err
				return false
			}
		}
		matches = append(matches, t)
		return true
	})
	if stop != nil {
		return idRows{}, stop
	}
	if e.met != nil {
		e.met.MatchesScanned.Add(uint64(scanned))
	}
	out := idRows{stride: rows.stride}
	scratch := make([]store.ID, rows.stride)
	steps := 0
	for r := 0; r < rows.n(); r++ {
		row := rows.row(r)
		for _, m := range matches {
			steps++
			if steps%cancelCheckInterval == 0 {
				if err := e.cancelled(); err != nil {
					return idRows{}, err
				}
			}
			copy(scratch, row)
			if idUnify(ps, scratch, m) {
				out.ids = append(out.ids, scratch...)
				out.parents = append(out.parents, rows.parents[r])
			}
		}
	}
	return out, nil
}

// idProbe is the general per-row strategy: concretize the mask from the
// row's slots and scan the matching range, exactly like the term-space path
// but without cloning a map per match. Large row sets fan out to the
// engine's worker pool with an index-sequenced merge preserving order.
func (e *engine) idProbe(src IDSource, ps [3]idPos, rows idRows) (idRows, error) {
	return e.parProbe(rows.n(), rows.stride, func(lo, hi int) (idRows, error) {
		out := idRows{stride: rows.stride}
		scratch := make([]store.ID, rows.stride)
		scanned := 0
		for r := lo; r < hi; r++ {
			if (r-lo)%cancelCheckInterval == 0 {
				if err := e.cancelled(); err != nil {
					return idRows{}, err
				}
			}
			row := rows.row(r)
			s, p, o := maskFor(ps, row)
			var stop error
			src.ForEachID(s, p, o, func(m store.IDTriple) bool {
				scanned++
				if scanned%cancelCheckInterval == 0 {
					if err := e.cancelled(); err != nil {
						stop = err
						return false
					}
				}
				copy(scratch, row)
				if idUnify(ps, scratch, m) {
					out.ids = append(out.ids, scratch...)
					out.parents = append(out.parents, rows.parents[r])
				}
				return true
			})
			if stop != nil {
				return idRows{}, stop
			}
		}
		if e.met != nil {
			e.met.MatchesScanned.Add(uint64(scanned))
		}
		return out, nil
	})
}

// maskFor concretizes the pattern for one row: constants keep their IDs,
// bound slots contribute the row's value, unbound slots scan as wildcards.
func maskFor(ps [3]idPos, row []store.ID) (s, p, o store.ID) {
	get := func(p idPos) store.ID {
		if p.slot < 0 {
			return p.id
		}
		return row[p.slot]
	}
	return get(ps[0]), get(ps[1]), get(ps[2])
}

// idUnify folds a match into a row copy: bound slots must agree with the
// match (repeated variables included — the second occurrence sees the
// first's assignment), unbound slots take the match's value. Mirrors the
// term-space unify.
func idUnify(ps [3]idPos, row []store.ID, m store.IDTriple) bool {
	vals := [3]store.ID{m.S, m.P, m.O}
	for i, p := range ps {
		if p.slot < 0 {
			continue // constants are enforced by the scan mask
		}
		if cur := row[p.slot]; cur != 0 {
			if cur != vals[i] {
				return false
			}
		} else {
			row[p.slot] = vals[i]
		}
	}
	return true
}

// decodeIDRows materializes the run's survivors: one batch ID→term decode,
// then one parent clone plus the run's new columns per row.
func decodeIDRows(src IDSource, rows idRows, slotVars []string, input []Binding) []Binding {
	if rows.n() == 0 {
		return nil
	}
	terms := src.Terms(rows.ids)
	out := make([]Binding, 0, rows.n())
	for r := 0; r < rows.n(); r++ {
		nb := input[rows.parents[r]].clone()
		base := r * rows.stride
		for s, v := range slotVars {
			if rows.ids[base+s] == 0 {
				continue
			}
			if _, bound := nb[v]; bound {
				continue
			}
			nb[v] = terms[base+s]
		}
		out = append(out, nb)
	}
	return out
}

// idProbeResult carries one probe chunk's output to the merger.
type idProbeResult struct {
	idx  int
	rows idRows
	err  error
}

// parProbe runs fn over contiguous [lo,hi) chunks of n rows on the engine's
// worker budget and concatenates the chunk outputs in index order — the
// idRows sibling of parMap, with the same non-blocking token borrowing so
// nested fan-out degrades to inline evaluation.
func (e *engine) parProbe(n, stride int, fn func(lo, hi int) (idRows, error)) (idRows, error) {
	if e.par <= 1 || n < parallelThreshold {
		return fn(0, n)
	}
	workers := e.par
	if workers > n {
		workers = n
	}
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case e.sem <- struct{}{}:
			extra++
		default:
			break acquire
		}
	}
	if extra == 0 {
		return fn(0, n)
	}
	nchunks := (extra + 1) * chunksPerWorker
	chunkSize := (n + nchunks - 1) / nchunks
	nchunks = (n + chunkSize - 1) / chunkSize

	work := make(chan int, nchunks)
	for i := 0; i < nchunks; i++ {
		work <- i
	}
	close(work)
	results := make(chan idProbeResult, nchunks)
	worker := func(drain func()) {
		for idx := range work {
			lo := idx * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			rows, err := fn(lo, hi)
			results <- idProbeResult{idx: idx, rows: rows, err: err}
			if drain != nil {
				drain()
			}
		}
	}
	for i := 0; i < extra; i++ {
		go func() {
			defer func() { <-e.sem }() // return the token as soon as this worker drains
			worker(nil)
		}()
	}

	// Index-sequenced merge, as in parMapCap: the caller is worker zero and
	// the merger.
	pending := make(map[int]idProbeResult, nchunks)
	next, received := 0, 0
	out := idRows{stride: stride}
	var firstErr error
	commit := func(r idProbeResult) {
		received++
		pending[r.idx] = r
		for {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue
			}
			if c.err != nil {
				firstErr = c.err
				continue
			}
			out.ids = append(out.ids, c.rows.ids...)
			out.parents = append(out.parents, c.rows.parents...)
		}
	}
	worker(func() {
		for {
			select {
			case r := <-results:
				commit(r)
			default:
				return
			}
		}
	})
	for received < nchunks {
		commit(<-results)
	}
	if firstErr != nil {
		return idRows{}, firstErr
	}
	return out, nil
}
