package sparql

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// idJoinStore builds a dataset shaped to exercise every ID-executor strategy:
// categorical triples (bound-object merge joins), a link chain (equal-prefix
// subject merges), numeric literals, a hub every entity points at (duplicate
// merge keys), a few self-loops (repeated variables), plus uncompacted delta
// triples and a tombstone so ScanIDs runs carry a tail.
func idJoinStore(t testing.TB) *store.Store {
	t.Helper()
	const n = 300
	ent := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://x/e%d", i)) }
	var triples []rdf.Triple
	for i := 0; i < n; i++ {
		triples = append(triples,
			rdf.Triple{S: ent(i), P: "http://x/cat", O: rdf.NewLiteral(fmt.Sprintf("c%d", i%3))},
			rdf.Triple{S: ent(i), P: "http://x/num", O: rdf.NewInteger(int64(i % 50))},
			rdf.Triple{S: ent(i), P: "http://x/link", O: ent((i + 7) % n)},
			rdf.Triple{S: ent(i), P: "http://x/rel", O: ent(0)}, // shared hub
		)
		if i%37 == 0 {
			triples = append(triples, rdf.Triple{S: ent(i), P: "http://x/link", O: ent(i)})
		}
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	st.Compact()
	// Leave delta entries and a tombstone behind so the ID scans see an
	// uncompacted tail.
	for i := 0; i < 20; i++ {
		if err := st.Add(rdf.Triple{S: ent(n + i), P: "http://x/cat", O: rdf.NewLiteral("c1")}); err != nil {
			t.Fatal(err)
		}
		if err := st.Add(rdf.Triple{S: ent(n + i), P: "http://x/num", O: rdf.NewInteger(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Delete(rdf.Triple{S: ent(1), P: "http://x/num", O: rdf.NewInteger(1)}) {
		t.Fatal("tombstone delete failed")
	}
	return st
}

// idJoinQueries is the differential grid: shapes chosen to hit each strategy
// (merge join, scan-cross, per-row probe) and each exclusion (mixed slots,
// repeated variables, predicate-variable lead, absent constants).
var idJoinQueries = []struct {
	name, q string
}{
	{"bound-object merge", `SELECT ?e ?v WHERE { ?e <http://x/cat> "c1" . ?e <http://x/num> ?v }`},
	{"three-pattern chain", `SELECT ?e ?o ?v WHERE { ?e <http://x/cat> "c2" . ?e <http://x/link> ?o . ?o <http://x/num> ?v }`},
	{"scan-cross then merge", `SELECT ?e ?c ?v WHERE { ?e <http://x/cat> ?c . ?e <http://x/num> ?v }`},
	{"duplicate merge keys", `SELECT ?e ?v WHERE { ?e <http://x/rel> ?h . ?h <http://x/num> ?v }`},
	{"cycle join", `SELECT ?a ?b WHERE { ?a <http://x/link> ?b . ?b <http://x/link> ?a }`},
	{"repeated variable", `SELECT ?a WHERE { ?a <http://x/link> ?a }`},
	{"predicate variable lead", `SELECT ?p ?x ?y WHERE { <http://x/e0> ?p ?o . ?x ?p ?y } LIMIT 400`},
	{"empty run", `SELECT ?e ?v WHERE { ?e <http://x/cat> "missing" . ?e <http://x/num> ?v }`},
	{"absent constant", `SELECT ?v WHERE { ?e <http://nowhere/p> ?v }`},
	{"optional", `SELECT ?e ?v WHERE { ?e <http://x/cat> "c1" . OPTIONAL { ?e <http://x/num> ?v } }`},
	{"union", `SELECT ?e WHERE { { ?e <http://x/cat> "c0" } UNION { ?e <http://x/cat> "c1" } }`},
	{"values with foreign term", `SELECT ?e ?v WHERE { VALUES ?e { <http://x/e1> <http://nowhere/x> } ?e <http://x/num> ?v }`},
	{"filter", `SELECT ?e ?v WHERE { ?e <http://x/cat> ?c . ?e <http://x/num> ?v FILTER(?v > 40) }`},
	{"order by limit", `SELECT ?e ?v WHERE { ?e <http://x/cat> "c1" . ?e <http://x/num> ?v } ORDER BY ?v ?e LIMIT 25`},
}

// TestIDJoinDifferential is the ID-executor contract: for every query shape,
// every parallelism setting, and both pipelines (streaming and
// materializing), the dictionary-ID path returns exactly the rows — values
// and order — of the term-space hash path.
func TestIDJoinDifferential(t *testing.T) {
	st := idJoinStore(t)
	for _, tc := range idJoinQueries {
		for _, par := range []int{1, 8} {
			for _, noStream := range []bool{false, true} {
				ref := execOpts(t, st, tc.q, Options{Parallelism: par, NoStream: noStream, NoIDJoin: true})
				got := execOpts(t, st, tc.q, Options{Parallelism: par, NoStream: noStream})
				if !reflect.DeepEqual(ref.Rows, got.Rows) {
					t.Errorf("%s (par=%d noStream=%v): ID path returned %d rows, hash path %d; first divergence: %v",
						tc.name, par, noStream, len(got.Rows), len(ref.Rows), firstDiff(ref.Rows, got.Rows))
				}
			}
		}
	}
}

func firstDiff(a, b []Binding) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Sprintf("row %d: hash=%v id=%v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestIDJoinFallsBackForPlainSource pins the compatibility contract: a
// Source that is not an IDSource (test wrappers, instrumentation) still
// evaluates correctly through the term-space path.
func TestIDJoinFallsBackForPlainSource(t *testing.T) {
	st := idJoinStore(t)
	q := `SELECT ?e ?v WHERE { ?e <http://x/cat> "c1" . ?e <http://x/num> ?v }`
	ref := execOpts(t, st, q, Options{Parallelism: 1})
	got := execOpts(t, plainSource{st}, q, Options{Parallelism: 1})
	if !reflect.DeepEqual(ref.Rows, got.Rows) {
		t.Fatalf("plain-Source evaluation diverged: %v", firstDiff(ref.Rows, got.Rows))
	}
}

// plainSource hides the store's ID methods, leaving only the Source surface.
type plainSource struct{ src Source }

func (p plainSource) ForEach(pt store.Pattern, fn func(rdf.Triple) bool) { p.src.ForEach(pt, fn) }
func (p plainSource) ForEachPage(pt store.Pattern, pos, max int, fn func(rdf.Triple) bool) (int, bool) {
	return p.src.ForEachPage(pt, pos, max, fn)
}
func (p plainSource) LayoutEpoch() uint64                { return p.src.LayoutEpoch() }
func (p plainSource) EstimateCount(pt store.Pattern) int { return p.src.EstimateCount(pt) }
func (p plainSource) NumTerms() int                      { return p.src.NumTerms() }
func (p plainSource) Cardinalities() map[rdf.IRI]store.PredCardinality {
	return p.src.Cardinalities()
}

// TestIDJoinUnderConcurrentWrites runs the differential grid's join queries
// while writers add and delete triples that never match the queried
// predicates but continually bump the store's layout epoch (delta growth,
// compaction). Every result must still equal the quiescent answer — this
// drives the ScanIDs epoch-restart path from the executor's side.
func TestIDJoinUnderConcurrentWrites(t *testing.T) {
	st := idJoinStore(t)
	queries := []string{
		`SELECT ?e ?v WHERE { ?e <http://x/cat> "c1" . ?e <http://x/num> ?v }`,
		`SELECT ?e ?o ?v WHERE { ?e <http://x/cat> "c2" . ?e <http://x/link> ?o . ?o <http://x/num> ?v }`,
	}
	want := make([][]Binding, len(queries))
	for i, q := range queries {
		want[i] = execOpts(t, st, q, Options{Parallelism: 1}).Rows
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				noise := rdf.Triple{
					S: rdf.IRI(fmt.Sprintf("http://noise/%d-%d", w, i)),
					P: "http://noise/p",
					O: rdf.NewInteger(int64(i)),
				}
				st.Add(noise)
				if i%5 == 0 {
					st.Delete(noise)
				}
				if i%50 == 0 {
					st.Compact()
				}
			}
		}(w)
	}
	for round := 0; round < 30; round++ {
		for i, q := range queries {
			res, err := ExecOpts(st, q, Options{Parallelism: 4})
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
			if !reflect.DeepEqual(res.Rows, want[i]) {
				t.Fatalf("round %d query %d diverged under writes: %v", round, i, firstDiff(want[i], res.Rows))
			}
		}
	}
	close(stop)
	writers.Wait()
}

// TestIDJoinMergeEdgeCases drives evalPatternRun directly at the strategy
// seams: a merge whose scan run is empty, input rows all sharing one key,
// and keys with no span in the sorted run but matches in the delta tail.
func TestIDJoinMergeEdgeCases(t *testing.T) {
	st := idJoinStore(t)
	e := newEngine(context.Background(), st, Options{Parallelism: 1})
	v := func(s string) Node { return Node{Var: s} }
	c := func(t rdf.Term) Node { return Node{Term: t} }

	ent := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://x/e%d", i)) }
	seed := []Binding{
		{"e": ent(1)},                      // its num triple is tombstoned
		{"e": ent(2)},                      // sorted-run match
		{"e": ent(2)},                      // duplicate key
		{"e": ent(305)},                    // match only in the uncompacted delta tail
		{"e": rdf.IRI("http://nowhere/e")}, // not in the dictionary
	}
	run := []TriplePattern{{S: v("e"), P: c(rdf.IRI("http://x/num")), O: v("n")}}

	got, err := e.evalPatternRun(run, seed)
	if err != nil {
		t.Fatal(err)
	}
	e.noIDJoin = true
	want, err := e.evalPatternRun(run, seed)
	e.noIDJoin = false
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("merge edges diverged: %v", firstDiff(want, got))
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 rows (dup key ×2 + delta tail), got %d", len(got))
	}

	// Empty scan run: a constant mask matching nothing returns no rows from
	// both paths without error.
	none := []TriplePattern{{S: v("e"), P: c(rdf.IRI("http://x/cat")), O: c(rdf.NewLiteral("missing"))}}
	got, err = e.evalPatternRun(none, seed)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: got %d rows, err %v", len(got), err)
	}
}
