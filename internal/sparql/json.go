package sparql

import (
	"encoding/json"

	"github.com/lodviz/lodviz/internal/rdf"
)

// JSONContentType is the media type of the SPARQL 1.1 Query Results JSON
// Format.
const JSONContentType = "application/sparql-results+json"

// JSONTerm is one RDF term in SPARQL-results JSON encoding.
type JSONTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonResults struct {
	Bindings []map[string]JSONTerm `json:"bindings"`
}

type jsonDoc struct {
	Head    jsonHead     `json:"head"`
	Boolean *bool        `json:"boolean,omitempty"`
	Results *jsonResults `json:"results,omitempty"`
}

// EncodeTerm maps an rdf.Term to the wire representation: IRIs become
// {"type":"uri"}, blank nodes {"type":"bnode"}, literals {"type":"literal"}
// with xml:lang or datatype attached (xsd:string, being the default, is
// omitted per the spec's recommendation).
func EncodeTerm(t rdf.Term) JSONTerm {
	switch v := t.(type) {
	case rdf.IRI:
		return JSONTerm{Type: "uri", Value: string(v)}
	case rdf.BlankNode:
		return JSONTerm{Type: "bnode", Value: string(v)}
	case rdf.Literal:
		jt := JSONTerm{Type: "literal", Value: v.Lexical}
		switch {
		case v.Lang != "":
			jt.Lang = v.Lang
		case v.Datatype != "" && v.Datatype != rdf.XSDString:
			jt.Datatype = string(v.Datatype)
		}
		return jt
	default:
		return JSONTerm{Type: "literal", Value: t.String()}
	}
}

// EncodeBinding maps one solution row to its wire representation — the
// same shape as an entry of results.bindings in the SPARQL JSON format.
// The streaming endpoint emits one of these per NDJSON line.
func EncodeBinding(row Binding) map[string]JSONTerm {
	enc := make(map[string]JSONTerm, len(row))
	for name, term := range row {
		if term == nil {
			continue
		}
		enc[name] = EncodeTerm(term)
	}
	return enc
}

// JSON renders the results in the SPARQL 1.1 Query Results JSON Format:
// SELECT results carry head.vars plus results.bindings, ASK results carry a
// boolean. The output is deterministic for a given Results value.
func (r *Results) JSON() ([]byte, error) {
	doc := jsonDoc{Head: jsonHead{Vars: r.Vars}}
	if r.Form == FormAsk {
		b := r.Ask
		doc.Boolean = &b
		return json.Marshal(doc)
	}
	res := jsonResults{Bindings: make([]map[string]JSONTerm, 0, len(r.Rows))}
	for _, row := range r.Rows {
		res.Bindings = append(res.Bindings, EncodeBinding(row))
	}
	doc.Results = &res
	return json.Marshal(doc)
}
