package sparql

import (
	"encoding/json"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestResultsJSONSelect(t *testing.T) {
	r := &Results{
		Form: FormSelect,
		Vars: []string{"s", "name", "age"},
		Rows: []Binding{
			{
				"s":    rdf.IRI("http://e/alice"),
				"name": rdf.NewLangLiteral("Alice", "en"),
				"age":  rdf.NewInteger(30),
			},
			{
				"s": rdf.BlankNode("b0"),
				// name unbound in this row
				"age": rdf.NewLiteral("plain"),
			},
		},
	}
	body, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]JSONTerm `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(doc.Head.Vars) != 3 || doc.Head.Vars[1] != "name" {
		t.Fatalf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d", len(doc.Results.Bindings))
	}
	b0 := doc.Results.Bindings[0]
	if b0["s"].Type != "uri" || b0["s"].Value != "http://e/alice" {
		t.Fatalf("s = %+v", b0["s"])
	}
	if b0["name"].Type != "literal" || b0["name"].Lang != "en" || b0["name"].Datatype != "" {
		t.Fatalf("name = %+v (lang literal must carry xml:lang, no datatype)", b0["name"])
	}
	if b0["age"].Datatype != string(rdf.XSDInteger) {
		t.Fatalf("age = %+v", b0["age"])
	}
	b1 := doc.Results.Bindings[1]
	if b1["s"].Type != "bnode" || b1["s"].Value != "b0" {
		t.Fatalf("bnode = %+v", b1["s"])
	}
	if _, present := b1["name"]; present {
		t.Fatal("unbound variable must be absent from its binding object")
	}
	if b1["age"].Datatype != "" {
		t.Fatalf("xsd:string datatype must be omitted, got %+v", b1["age"])
	}
}

func TestResultsJSONAsk(t *testing.T) {
	body, err := (&Results{Form: FormAsk, Ask: true}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Boolean *bool `json:"boolean"`
		Results *any  `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Boolean == nil || !*doc.Boolean {
		t.Fatalf("boolean = %v", doc.Boolean)
	}
	if doc.Results != nil {
		t.Fatal("ASK document must not carry results")
	}
}

func TestResultsJSONEmptySelect(t *testing.T) {
	body, err := (&Results{Form: FormSelect, Vars: []string{"x"}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]JSONTerm `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results.Bindings == nil || len(doc.Results.Bindings) != 0 {
		t.Fatalf("empty SELECT must serialize bindings as [], got %s", body)
	}
}

func TestEncodeTermDouble(t *testing.T) {
	jt := EncodeTerm(rdf.NewDouble(2.5))
	if jt.Type != "literal" || jt.Value != "2.5" || jt.Datatype != string(rdf.XSDDouble) {
		t.Fatalf("double = %+v", jt)
	}
}
