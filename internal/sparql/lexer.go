// Package sparql implements a SPARQL 1.1 query engine subset over the lodviz
// triple store: SELECT and ASK forms, basic graph patterns with
// selectivity-ordered joins, FILTER expressions, OPTIONAL, UNION, BIND,
// VALUES, DISTINCT, ORDER BY, LIMIT/OFFSET, and GROUP BY with the standard
// aggregates.
//
// The survey's Web-of-Data systems are all SPARQL-driven (endpoints are the
// access path the "dynamic data" challenge assumes), so the engine is the
// substrate every exploration feature in lodviz queries through.
//
// Observability: Options.Metrics attaches engine-wide counters (see
// Metrics), and Options.Trace attaches a per-query execution trace — an
// explain.Trace span tree with one span per plan stage recording the
// chosen strategy (idjoin/hash/stream), rows in/out, matches scanned, and
// wall time. Both are nil-safe and amortized per chunk/page, so the
// uninstrumented path pays nothing; internal/explain documents the trace
// format.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tKeyword
	tVar       // ?x or $x (text holds bare name)
	tIRI       // <...> (text holds IRI)
	tPName     // prefixed name pfx:local
	tString    // string literal body
	tLangTag   // @en
	tDTMarker  // ^^
	tInteger   // 42
	tDecimal   // 4.2
	tDouble    // 4e2
	tLBrace    // {
	tRBrace    // }
	tLParen    // (
	tRParen    // )
	tDot       // .
	tSemicolon // ;
	tComma     // ,
	tStar      // *
	tEq        // =
	tNeq       // !=
	tLt        // <
	tGt        // >
	tLe        // <=
	tGe        // >=
	tAndAnd    // &&
	tOrOr      // ||
	tBang      // !
	tPlus      // +
	tMinus     // -
	tSlash     // /
	tBlank     // _:label
	tAnon      // []
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tEOF: "end of query", tKeyword: "keyword", tVar: "variable",
		tIRI: "IRI", tPName: "prefixed name", tString: "string",
		tLangTag: "language tag", tDTMarker: "'^^'", tInteger: "integer",
		tDecimal: "decimal", tDouble: "double", tLBrace: "'{'", tRBrace: "'}'",
		tLParen: "'('", tRParen: "')'", tDot: "'.'", tSemicolon: "';'",
		tComma: "','", tStar: "'*'", tEq: "'='", tNeq: "'!='", tLt: "'<'",
		tGt: "'>'", tLe: "'<='", tGe: "'>='", tAndAnd: "'&&'", tOrOr: "'||'",
		tBang: "'!'", tPlus: "'+'", tMinus: "'-'", tSlash: "'/'",
		tBlank: "blank node", tAnon: "'[]'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

type tok struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: offset %d: %s", lx.pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) skip() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		return
	}
}

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "FILTER": true,
	"OPTIONAL": true, "UNION": true, "PREFIX": true, "BASE": true,
	"DISTINCT": true, "REDUCED": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"GROUP": true, "HAVING": true, "AS": true, "VALUES": true,
	"BIND": true, "UNDEF": true, "A": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true, "SEPARATOR": true,
	"REGEX": true, "BOUND": true, "STR": true, "LANG": true,
	"DATATYPE": true, "ISIRI": true, "ISURI": true, "ISBLANK": true,
	"ISLITERAL": true, "ISNUMERIC": true, "STRSTARTS": true,
	"STRENDS": true, "CONTAINS": true, "STRLEN": true, "UCASE": true,
	"LCASE": true, "ABS": true, "CEIL": true, "FLOOR": true, "ROUND": true,
	"COALESCE": true, "IF": true, "LANGMATCHES": true, "NOT": true,
	"IN": true, "EXISTS": true, "CONCAT": true, "SUBSTR": true,
	"REPLACE": true, "YEAR": true, "MONTH": true, "DAY": true,
	"SERVICE": true, "SILENT": true,
	"INSERT": true, "DELETE": true, "DATA": true,
}

func (lx *lexer) next() (tok, error) {
	lx.skip()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return tok{kind: tEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '{':
		lx.pos++
		return tok{kind: tLBrace, pos: start}, nil
	case '}':
		lx.pos++
		return tok{kind: tRBrace, pos: start}, nil
	case '(':
		lx.pos++
		return tok{kind: tLParen, pos: start}, nil
	case ')':
		lx.pos++
		return tok{kind: tRParen, pos: start}, nil
	case '.':
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			return lx.lexNumber()
		}
		lx.pos++
		return tok{kind: tDot, pos: start}, nil
	case ';':
		lx.pos++
		return tok{kind: tSemicolon, pos: start}, nil
	case ',':
		lx.pos++
		return tok{kind: tComma, pos: start}, nil
	case '*':
		lx.pos++
		return tok{kind: tStar, pos: start}, nil
	case '/':
		lx.pos++
		return tok{kind: tSlash, pos: start}, nil
	case '+':
		if lx.pos+1 < len(lx.src) && (isDigit(lx.src[lx.pos+1]) || lx.src[lx.pos+1] == '.') {
			return lx.lexNumber()
		}
		lx.pos++
		return tok{kind: tPlus, pos: start}, nil
	case '-':
		if lx.pos+1 < len(lx.src) && (isDigit(lx.src[lx.pos+1]) || lx.src[lx.pos+1] == '.') {
			return lx.lexNumber()
		}
		lx.pos++
		return tok{kind: tMinus, pos: start}, nil
	case '=':
		lx.pos++
		return tok{kind: tEq, pos: start}, nil
	case '!':
		if strings.HasPrefix(lx.src[lx.pos:], "!=") {
			lx.pos += 2
			return tok{kind: tNeq, pos: start}, nil
		}
		lx.pos++
		return tok{kind: tBang, pos: start}, nil
	case '<':
		// '<' may open an IRI or be a comparison. An IRI ref contains no
		// spaces and closes with '>': decide by scanning.
		if iriEnd := lx.iriRefEnd(); iriEnd > 0 {
			raw := lx.src[lx.pos+1 : iriEnd]
			lx.pos = iriEnd + 1
			return tok{kind: tIRI, text: raw, pos: start}, nil
		}
		if strings.HasPrefix(lx.src[lx.pos:], "<=") {
			lx.pos += 2
			return tok{kind: tLe, pos: start}, nil
		}
		lx.pos++
		return tok{kind: tLt, pos: start}, nil
	case '>':
		if strings.HasPrefix(lx.src[lx.pos:], ">=") {
			lx.pos += 2
			return tok{kind: tGe, pos: start}, nil
		}
		lx.pos++
		return tok{kind: tGt, pos: start}, nil
	case '&':
		if strings.HasPrefix(lx.src[lx.pos:], "&&") {
			lx.pos += 2
			return tok{kind: tAndAnd, pos: start}, nil
		}
		return tok{}, lx.errf("stray '&'")
	case '|':
		if strings.HasPrefix(lx.src[lx.pos:], "||") {
			lx.pos += 2
			return tok{kind: tOrOr, pos: start}, nil
		}
		return tok{}, lx.errf("stray '|'")
	case '?', '$':
		lx.pos++
		begin := lx.pos
		for lx.pos < len(lx.src) && isVarChar(lx.src[lx.pos]) {
			lx.pos++
		}
		if lx.pos == begin {
			return tok{}, lx.errf("empty variable name")
		}
		return tok{kind: tVar, text: lx.src[begin:lx.pos], pos: start}, nil
	case '"', '\'':
		return lx.lexString(c)
	case '@':
		lx.pos++
		begin := lx.pos
		for lx.pos < len(lx.src) && (isAlpha(lx.src[lx.pos]) || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos == begin {
			return tok{}, lx.errf("empty language tag")
		}
		return tok{kind: tLangTag, text: lx.src[begin:lx.pos], pos: start}, nil
	case '^':
		if strings.HasPrefix(lx.src[lx.pos:], "^^") {
			lx.pos += 2
			return tok{kind: tDTMarker, pos: start}, nil
		}
		return tok{}, lx.errf("stray '^'")
	case '_':
		if strings.HasPrefix(lx.src[lx.pos:], "_:") {
			lx.pos += 2
			begin := lx.pos
			for lx.pos < len(lx.src) && isVarChar(lx.src[lx.pos]) {
				lx.pos++
			}
			return tok{kind: tBlank, text: lx.src[begin:lx.pos], pos: start}, nil
		}
		return tok{}, lx.errf("stray '_'")
	case '[':
		j := lx.pos + 1
		for j < len(lx.src) && (lx.src[j] == ' ' || lx.src[j] == '\t') {
			j++
		}
		if j < len(lx.src) && lx.src[j] == ']' {
			lx.pos = j + 1
			return tok{kind: tAnon, pos: start}, nil
		}
		return tok{}, lx.errf("blank node property lists are not supported in queries")
	}
	if isDigit(c) {
		return lx.lexNumber()
	}
	return lx.lexWord()
}

// iriRefEnd returns the index of the closing '>' if the text at pos opens a
// well-formed IRI reference, else -1.
func (lx *lexer) iriRefEnd() int {
	for i := lx.pos + 1; i < len(lx.src); i++ {
		switch lx.src[i] {
		case '>':
			return i
		case ' ', '\t', '\n', '\r', '<', '"', '{', '}':
			return -1
		}
	}
	return -1
}

func (lx *lexer) lexString(quote byte) (tok, error) {
	start := lx.pos
	lx.pos++
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return tok{}, lx.errf("unterminated string")
		}
		c := lx.src[lx.pos]
		if c == quote {
			lx.pos++
			return tok{kind: tString, text: b.String(), pos: start}, nil
		}
		if c == '\\' {
			if lx.pos+1 >= len(lx.src) {
				return tok{}, lx.errf("dangling escape")
			}
			switch e := lx.src[lx.pos+1]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(e)
			default:
				return tok{}, lx.errf("invalid escape \\%c", e)
			}
			lx.pos += 2
			continue
		}
		b.WriteByte(c)
		lx.pos++
	}
}

func (lx *lexer) lexNumber() (tok, error) {
	start := lx.pos
	if c := lx.src[lx.pos]; c == '+' || c == '-' {
		lx.pos++
	}
	digits := 0
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
		digits++
	}
	kind := tInteger
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			kind = tDecimal
			lx.pos++
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.pos++
				digits++
			}
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		kind = tDouble
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		expDigits := 0
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
			expDigits++
		}
		if expDigits == 0 {
			return tok{}, lx.errf("malformed exponent")
		}
	}
	if digits == 0 {
		return tok{}, lx.errf("malformed number")
	}
	return tok{kind: kind, text: lx.src[start:lx.pos], pos: start}, nil
}

// lexWord scans keywords and prefixed names.
func (lx *lexer) lexWord() (tok, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isPNRune(r) && r != ':' {
			break
		}
		lx.pos += size
	}
	// Names may not end with '.' (it terminates the pattern).
	for lx.pos > start && lx.src[lx.pos-1] == '.' {
		lx.pos--
	}
	word := lx.src[start:lx.pos]
	if word == "" {
		return tok{}, lx.errf("unexpected character %q", lx.src[start])
	}
	if strings.Contains(word, ":") {
		return tok{kind: tPName, text: word, pos: start}, nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		return tok{kind: tKeyword, text: up, pos: start}, nil
	}
	return tok{}, lx.errf("unknown keyword %q", word)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isVarChar(c byte) bool {
	return isAlpha(c) || isDigit(c) || c == '_'
}
func isPNRune(r rune) bool {
	return r == '_' || r == '-' || r == '.' ||
		r >= '0' && r <= '9' ||
		r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
		r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r))
}
