package sparql

import "github.com/lodviz/lodviz/internal/obs"

// Metrics is the engine's instrumentation surface: a bundle of obs handles
// the evaluator bumps as it runs. All handles (and the bundle itself) are
// nil-safe, so uninstrumented evaluation pays one pointer check per site —
// the NoObs benchmark variant simply leaves Options.Metrics nil.
//
// Counting granularity is deliberately coarse: the hot loops accumulate in
// locals and flush per chunk/page, not per row, so instrumented evaluation
// stays within a few percent of bare (the obs bench scenario gates this).
type Metrics struct {
	// RunsIDJoin / RunsHash count triple-pattern runs by executor.
	RunsIDJoin *obs.Counter
	RunsHash   *obs.Counter
	// QueriesStreamed / QueriesMaterialized count query evaluations by
	// delivery path.
	QueriesStreamed     *obs.Counter
	QueriesMaterialized *obs.Counter
	// PushdownHits counts evaluations whose LIMIT rode into the scan as an
	// early-termination budget.
	PushdownHits *obs.Counter
	// RowsOut counts solution rows emitted by pattern stages.
	RowsOut *obs.Counter
	// MatchesScanned counts index entries visited by pattern executors.
	MatchesScanned *obs.Counter
	// PagesScanned counts store pages pulled by the streaming driver.
	PagesScanned *obs.Counter
	// Updates counts SPARQL UPDATE evaluations.
	Updates *obs.Counter
}

// NewMetrics registers the engine's metric families on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		RunsIDJoin:          r.Counter("lodviz_engine_runs_idjoin_total", "Triple-pattern runs executed over dictionary IDs."),
		RunsHash:            r.Counter("lodviz_engine_runs_hash_total", "Triple-pattern runs executed on the term-space hash path."),
		QueriesStreamed:     r.Counter("lodviz_engine_queries_streamed_total", "Query evaluations served by a streaming fast path."),
		QueriesMaterialized: r.Counter("lodviz_engine_queries_materialized_total", "Query evaluations served by the materializing pipeline."),
		PushdownHits:        r.Counter("lodviz_engine_limit_pushdown_total", "Evaluations whose LIMIT bounded the scan (early termination)."),
		RowsOut:             r.Counter("lodviz_engine_rows_total", "Solution rows emitted by pattern stages."),
		MatchesScanned:      r.Counter("lodviz_engine_matches_scanned_total", "Index entries visited by pattern executors."),
		PagesScanned:        r.Counter("lodviz_engine_pages_scanned_total", "Store pages pulled by the streaming driver."),
		Updates:             r.Counter("lodviz_engine_updates_total", "SPARQL UPDATE evaluations."),
	}
}

// addScan flushes one executor stage's local tallies.
func (m *Metrics) addScan(matches, rows int) {
	if m == nil {
		return
	}
	m.MatchesScanned.Add(uint64(matches))
	m.RowsOut.Add(uint64(rows))
}
