package sparql

import (
	"context"
	"runtime"

	"github.com/lodviz/lodviz/internal/store"
)

// The parallel BGP pipeline: intermediate binding sets are partitioned into
// contiguous chunks, workers probe the store's index ranges for each chunk
// concurrently (the store's permutation indexes are read-only under RLock,
// so probes never contend on data), and a sequencer merges the per-chunk
// outputs back in chunk order. Because every chunk preserves the sequential
// probe order internally and chunks are emitted in index order, the merged
// output is byte-for-byte identical to the sequential loop — queries without
// ORDER BY stay deterministic for free.
//
// Worker accounting is engine-wide: an engine holds par-1 spare-worker
// tokens, every parMap call runs the calling goroutine as one worker and
// borrows extra workers non-blockingly from that budget. Nested fan-out
// (OPTIONAL chunks whose inner groups fan out again) therefore degrades to
// inline evaluation instead of multiplying goroutines, and total concurrency
// stays bounded by Parallelism.

// parallelThreshold is the minimum binding-set size before fan-out pays for
// the goroutine and channel overhead; smaller inputs run sequentially.
const parallelThreshold = 32

// chunksPerWorker oversubscribes chunks relative to workers so a straggler
// chunk (one hub entity with a huge index range) doesn't idle the pool.
const chunksPerWorker = 4

// Options configure query evaluation.
type Options struct {
	// Parallelism is the worker count for basic-graph-pattern evaluation.
	// 0 selects runtime.NumCPU(); values below 0 and 1 force sequential
	// evaluation. Results are identical (including order) at every
	// setting.
	Parallelism int
	// Service evaluates SERVICE clauses against remote endpoints. When nil,
	// SERVICE fails the query and SERVICE SILENT degrades to the local
	// partial result.
	Service ServiceEvaluator
}

// workers resolves the option to an effective worker count.
func (o Options) workers() int {
	if o.Parallelism == 0 {
		return runtime.NumCPU()
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// newEngine builds an engine for one query evaluation.
func newEngine(ctx context.Context, st *store.Store, opt Options) *engine {
	e := &engine{ctx: ctx, st: st, par: opt.workers(), svc: opt.Service}
	if e.par > 1 {
		e.sem = make(chan struct{}, e.par-1)
	}
	return e
}

// chunkResult carries one chunk's output to the merger.
type chunkResult struct {
	idx  int
	rows []Binding
	err  error
}

// parMap runs fn over contiguous chunks of input on the engine's worker
// budget and concatenates the per-chunk outputs in chunk index order, so the
// result is exactly fn(input)'s sequential output. fn must be safe for
// concurrent calls on disjoint chunks. Inputs below parallelThreshold, an
// engine with par<=1, or an exhausted worker budget evaluate inline with no
// goroutines spawned.
func (e *engine) parMap(input []Binding, fn func(chunk []Binding) ([]Binding, error)) ([]Binding, error) {
	if e.par <= 1 || len(input) < parallelThreshold {
		return fn(input)
	}
	workers := e.par
	if workers > len(input) {
		workers = len(input)
	}
	// Borrow extra workers beyond the calling goroutine. Non-blocking:
	// a nested call finding the budget spent stays inline rather than
	// deadlocking on tokens held by its ancestors.
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case e.sem <- struct{}{}:
			extra++
		default:
			break acquire
		}
	}
	if extra == 0 {
		return fn(input)
	}

	nchunks := (extra + 1) * chunksPerWorker
	chunkSize := (len(input) + nchunks - 1) / nchunks
	nchunks = (len(input) + chunkSize - 1) / chunkSize

	work := make(chan int, nchunks)
	for i := 0; i < nchunks; i++ {
		work <- i
	}
	close(work)
	results := make(chan chunkResult, nchunks)
	worker := func() {
		for idx := range work {
			lo := idx * chunkSize
			hi := lo + chunkSize
			if hi > len(input) {
				hi = len(input)
			}
			rows, err := fn(input[lo:hi])
			results <- chunkResult{idx: idx, rows: rows, err: err}
		}
	}
	for i := 0; i < extra; i++ {
		go func() {
			defer func() { <-e.sem }() // return the token as soon as this worker drains
			worker()
		}()
	}
	worker() // the caller is worker zero

	// Index-sequenced merge: chunks finish in any order; buffer the
	// out-of-order ones and append each as its turn comes, so the output
	// (and the reported error, if any) match sequential evaluation.
	pending := make(map[int]chunkResult, nchunks)
	next := 0
	var out []Binding
	var firstErr error
	for received := 0; received < nchunks; received++ {
		r := <-results
		pending[r.idx] = r
		for {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue
			}
			if c.err != nil {
				firstErr = c.err
				continue
			}
			out = append(out, c.rows...)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
