package sparql

import (
	"context"
	"runtime"
	"sync/atomic"

	"github.com/lodviz/lodviz/internal/explain"
)

// The parallel BGP pipeline: intermediate binding sets are partitioned into
// contiguous chunks, workers probe the store's index ranges for each chunk
// concurrently (the store's permutation indexes are read-only under RLock,
// so probes never contend on data), and a sequencer merges the per-chunk
// outputs back in chunk order. Because every chunk preserves the sequential
// probe order internally and chunks are emitted in index order, the merged
// output is byte-for-byte identical to the sequential loop — queries without
// ORDER BY stay deterministic for free.
//
// Worker accounting is engine-wide: an engine holds par-1 spare-worker
// tokens, every parMap call runs the calling goroutine as one worker and
// borrows extra workers non-blockingly from that budget. Nested fan-out
// (OPTIONAL chunks whose inner groups fan out again) therefore degrades to
// inline evaluation instead of multiplying goroutines, and total concurrency
// stays bounded by Parallelism.

// parallelThreshold is the minimum binding-set size before fan-out pays for
// the goroutine and channel overhead; smaller inputs run sequentially.
const parallelThreshold = 32

// chunksPerWorker oversubscribes chunks relative to workers so a straggler
// chunk (one hub entity with a huge index range) doesn't idle the pool.
const chunksPerWorker = 4

// Options configure query evaluation.
type Options struct {
	// Parallelism is the worker count for basic-graph-pattern evaluation.
	// 0 selects runtime.NumCPU(); values below 0 and 1 force sequential
	// evaluation. Results are identical (including order) at every
	// setting.
	Parallelism int
	// Service evaluates SERVICE clauses against remote endpoints. When nil,
	// SERVICE fails the query and SERVICE SILENT degrades to the local
	// partial result.
	Service ServiceEvaluator
	// NoStream disables the streaming fast paths (LIMIT-pushdown early
	// termination, the bounded top-k heap for ORDER BY + LIMIT, and the
	// first-solution short-circuit for ASK), forcing the materializing
	// pipeline. Results are identical either way; benchmarks and
	// differential tests use it to compare the two paths.
	NoStream bool
	// NoIDJoin disables dictionary-ID execution of triple-pattern runs
	// (merge joins over permutation runs, batch term decoding), forcing the
	// per-pattern term-space hash path. Results are identical either way;
	// benchmarks and differential tests use it to compare the two
	// executors.
	NoIDJoin bool
	// Metrics, when set, receives aggregate engine counters (pattern runs
	// by executor, rows, scanned matches/pages, pushdown hits). Nil costs
	// one pointer check per flush site.
	Metrics *Metrics
	// Trace, when set, receives the query's execution span tree:
	// parse/plan/execute spans plus one child per pattern stage with the
	// join strategy and row counts. Nil disables tracing entirely.
	Trace *explain.Trace
}

// workers resolves the option to an effective worker count.
func (o Options) workers() int {
	if o.Parallelism == 0 {
		return runtime.NumCPU()
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// newEngine builds an engine for one query evaluation.
func newEngine(ctx context.Context, st Source, opt Options) *engine {
	e := &engine{ctx: ctx, st: st, par: opt.workers(), svc: opt.Service, noIDJoin: opt.NoIDJoin, met: opt.Metrics, trace: opt.Trace}
	if e.par > 1 {
		e.sem = make(chan struct{}, e.par-1)
	}
	return e
}

// chunkResult carries one chunk's output to the merger.
type chunkResult struct {
	idx  int
	rows []Binding
	err  error
}

// parMap runs fn over contiguous chunks of input on the engine's worker
// budget and concatenates the per-chunk outputs in chunk index order, so the
// result is exactly fn(input)'s sequential output. fn must be safe for
// concurrent calls on disjoint chunks. Inputs below parallelThreshold, an
// engine with par<=1, or an exhausted worker budget evaluate inline with no
// goroutines spawned.
func (e *engine) parMap(input []Binding, fn func(chunk []Binding) ([]Binding, error)) ([]Binding, error) {
	return e.parMapCap(input, -1, func(chunk []Binding, _ int) ([]Binding, error) {
		return fn(chunk)
	})
}

// parMapCap is parMap with a row budget threaded through the worker pool:
// only the first cap rows of the merged output are needed (cap < 0 =
// unlimited). Each chunk is asked for at most cap rows — a chunk alone can
// never contribute more than the whole result — and once the in-order
// committed prefix reaches cap, workers skip every chunk not yet started:
// the work queue hands out chunks in index order, so an unstarted chunk is
// ordered after everything already committed and cannot reach the output.
// The merged result is exactly the first cap rows of the sequential
// evaluation, at every parallelism setting.
func (e *engine) parMapCap(input []Binding, cap int, fn func(chunk []Binding, cap int) ([]Binding, error)) ([]Binding, error) {
	truncate := func(rows []Binding) []Binding {
		if cap >= 0 && len(rows) > cap {
			rows = rows[:cap]
		}
		return rows
	}
	if e.par <= 1 || len(input) < parallelThreshold {
		rows, err := fn(input, cap)
		return truncate(rows), err
	}
	workers := e.par
	if workers > len(input) {
		workers = len(input)
	}
	// Borrow extra workers beyond the calling goroutine. Non-blocking:
	// a nested call finding the budget spent stays inline rather than
	// deadlocking on tokens held by its ancestors.
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case e.sem <- struct{}{}:
			extra++
		default:
			break acquire
		}
	}
	if extra == 0 {
		rows, err := fn(input, cap)
		return truncate(rows), err
	}

	nchunks := (extra + 1) * chunksPerWorker
	chunkSize := (len(input) + nchunks - 1) / nchunks
	nchunks = (len(input) + chunkSize - 1) / chunkSize

	work := make(chan int, nchunks)
	for i := 0; i < nchunks; i++ {
		work <- i
	}
	close(work)
	results := make(chan chunkResult, nchunks)
	// filled flips once the merger has committed cap rows in order; chunks
	// pulled after that point are provably beyond the budget (the work
	// queue hands chunks out in index order) and are answered empty
	// without probing the store.
	var filled atomic.Bool
	worker := func(drain func()) {
		for idx := range work {
			if filled.Load() {
				results <- chunkResult{idx: idx}
				continue
			}
			lo := idx * chunkSize
			hi := lo + chunkSize
			if hi > len(input) {
				hi = len(input)
			}
			rows, err := fn(input[lo:hi], cap)
			results <- chunkResult{idx: idx, rows: rows, err: err}
			if drain != nil {
				drain()
			}
		}
	}
	for i := 0; i < extra; i++ {
		go func() {
			defer func() { <-e.sem }() // return the token as soon as this worker drains
			worker(nil)
		}()
	}

	// Index-sequenced merge: chunks finish in any order; buffer the
	// out-of-order ones and append each as its turn comes, so the output
	// (and the reported error, if any) match sequential evaluation. The
	// caller is worker zero AND the merger: it commits whatever results
	// are already available between its own chunks, so filled can flip
	// while later chunks are still queued — that is what makes the skip
	// above reachable.
	pending := make(map[int]chunkResult, nchunks)
	next := 0
	received := 0
	var out []Binding
	var firstErr error
	commit := func(r chunkResult) {
		received++
		pending[r.idx] = r
		for {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr != nil {
				continue
			}
			if c.err != nil {
				// A chunk past the filled cap is unreachable in sequential
				// order — its (cancellation) error must not override the
				// complete result, or parallel evaluation could fail where
				// sequential evaluation returns rows.
				if cap < 0 || len(out) < cap {
					firstErr = c.err
				}
				continue
			}
			out = append(out, c.rows...)
			if cap >= 0 && len(out) >= cap {
				filled.Store(true)
			}
		}
	}
	worker(func() {
		for {
			select {
			case r := <-results:
				commit(r)
			default:
				return
			}
		}
	})
	for received < nchunks {
		commit(<-results)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return truncate(out), nil
}
