package sparql

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func parallelStore(t testing.TB, entities int) *store.Store {
	t.Helper()
	st, err := store.Load(gen.EntityDataset(gen.EntityOptions{
		Entities: entities, NumericProps: 2, CategoryProps: 2, LinkProps: 1, Seed: 41,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

const parallelJoinQueryFmt = `SELECT ?e ?o ?v WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> ?v . }`

func parallelJoinQuery() string {
	return fmt.Sprintf(parallelJoinQueryFmt, string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("num0")))
}

// rowsEqual requires identical rows in identical order — the parallel
// engine's determinism guarantee is stronger than multiset equality.
func rowsEqual(a, b *Results) bool {
	if !reflect.DeepEqual(a.Vars, b.Vars) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

// The parallel path must return exactly the sequential path's rows, in the
// sequential path's order, at every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	st := parallelStore(t, 2000)
	parsed, err := Parse(parallelJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := EvalOpts(st, parsed, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) < parallelThreshold {
		t.Fatalf("only %d rows; dataset too small to engage the pool", len(seq.Rows))
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		par, err := EvalOpts(st, parsed, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", workers, err)
		}
		if !rowsEqual(seq, par) {
			t.Errorf("Parallelism=%d: rows differ from sequential (seq=%d par=%d)",
				workers, len(seq.Rows), len(par.Rows))
		}
	}
}

// Repeated parallel runs of the same query must be byte-identical — the
// determinism the index-sequenced merge exists to provide. Run under -race
// this also exercises the concurrent probe paths.
func TestParallelDeterministic(t *testing.T) {
	st := parallelStore(t, 2000)
	parsed, err := Parse(parallelJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	first, err := EvalOpts(st, parsed, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 5; run++ {
		again, err := EvalOpts(st, parsed, Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(first, again) {
			t.Fatalf("run %d differs from run 0", run)
		}
	}
}

// OPTIONAL's per-binding left joins also fan out; results must match the
// sequential evaluation exactly.
func TestParallelOptionalMatchesSequential(t *testing.T) {
	st := parallelStore(t, 1000)
	q := fmt.Sprintf(`SELECT ?e ?v WHERE { ?e <%s> ?c . OPTIONAL { ?e <%s> ?v . } }`,
		string(gen.Prop("cat0")), string(gen.Prop("num1")))
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := EvalOpts(st, parsed, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvalOpts(st, parsed, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(seq, par) {
		t.Errorf("OPTIONAL rows differ: seq=%d par=%d", len(seq.Rows), len(par.Rows))
	}
}

// Aggregation over the parallel pipeline: GROUP BY consumes the solution
// stream, so any ordering slip upstream shows up as unstable group rows.
func TestParallelGroupByStable(t *testing.T) {
	st := parallelStore(t, 2000)
	q := fmt.Sprintf(`SELECT ?c (COUNT(?e) AS ?n) WHERE { ?e <%s> ?c . ?e <%s> ?v . } GROUP BY ?c ORDER BY ?c`,
		string(gen.Prop("cat0")), string(gen.Prop("num0")))
	seq, err := ExecOpts(st, q, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecOpts(st, q, Options{Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(seq, par) {
		t.Errorf("grouped rows differ: seq=%v par=%v", seq.Rows, par.Rows)
	}
}

// parMap plumbing: chunk boundaries must tile the input exactly once, in
// order, for sizes around the threshold and chunking arithmetic edges.
func TestParMapTilesInput(t *testing.T) {
	for _, n := range []int{0, 1, parallelThreshold - 1, parallelThreshold, 33, 100, 257, 1024} {
		e := newEngine(nil, nil, Options{Parallelism: 4})
		input := make([]Binding, n)
		for i := range input {
			input[i] = Binding{"i": rdf.NewInteger(int64(i))}
		}
		out, err := e.parMap(input, func(chunk []Binding) ([]Binding, error) {
			return chunk, nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d outputs", n, len(out))
		}
		for i, b := range out {
			if !reflect.DeepEqual(b, input[i]) {
				t.Fatalf("n=%d: output %d out of order", n, i)
			}
		}
	}
}

// Errors from any chunk must surface, and the lowest-indexed chunk's error
// wins so error identity is deterministic.
func TestParMapPropagatesFirstError(t *testing.T) {
	e := newEngine(nil, nil, Options{Parallelism: 4})
	input := make([]Binding, 256)
	for i := range input {
		input[i] = Binding{"i": rdf.NewInteger(int64(i))}
	}
	errBoom := errors.New("boom")
	_, err := e.parMap(input, func(chunk []Binding) ([]Binding, error) {
		if v, _ := chunk[0]["i"].(rdf.Literal); v.Lexical != "0" {
			return nil, fmt.Errorf("late error %s", v.Lexical)
		}
		return nil, errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want first chunk's error", err)
	}
}

// Nested parMap (OPTIONAL chunks whose inner groups fan out again) must not
// deadlock on the shared worker budget, and must preserve order.
func TestParMapNestedBudget(t *testing.T) {
	e := newEngine(nil, nil, Options{Parallelism: 4})
	input := make([]Binding, 512)
	for i := range input {
		input[i] = Binding{"i": rdf.NewInteger(int64(i))}
	}
	out, err := e.parMap(input, func(chunk []Binding) ([]Binding, error) {
		return e.parMap(chunk, func(inner []Binding) ([]Binding, error) {
			return inner, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(input) {
		t.Fatalf("got %d outputs, want %d", len(out), len(input))
	}
	for i := range out {
		if !reflect.DeepEqual(out[i], input[i]) {
			t.Fatalf("output %d out of order", i)
		}
	}
}
