package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Parse parses a SPARQL query string. Errors returned here (and only here)
// match ErrParse under errors.Is.
func Parse(src string) (*Query, error) {
	p := &parser{lx: &lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, wrapParse(err)
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, wrapParse(err)
	}
	if p.tok.kind != tEOF {
		return nil, wrapParse(p.errf("unexpected trailing %v", p.tok.kind))
	}
	q.prefixes = p.prefixes
	return q, nil
}

type parser struct {
	lx       *lexer
	tok      tok
	peeked   *tok
	prefixes map[string]string
	bnodeSeq int
	// groundOnly rejects variables (and [] anonymous nodes, which desugar to
	// variables) inside a triples block; update data blocks set it.
	groundOnly bool
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: parse: %s (near offset %d)", fmt.Sprintf(format, args...), p.tok.pos)
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tKeyword && p.tok.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return p.advance()
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.errf("expected %v, found %v", k, p.tok.kind)
	}
	return p.advance()
}

// parsePrologue consumes the shared PREFIX/BASE prologue (queries and
// updates use the same one).
func (p *parser) parsePrologue() error {
	for {
		switch {
		case p.isKeyword("PREFIX"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tPName {
				return p.errf("expected prefix label")
			}
			label := strings.TrimSuffix(p.tok.text, ":")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRI {
				return p.errf("expected namespace IRI")
			}
			p.prefixes[label] = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("BASE"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRI {
				return p.errf("expected base IRI")
			}
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.parsePrologue(); err != nil {
		return nil, err
	}
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("ASK"):
		return p.parseAsk()
	default:
		return nil, p.errf("expected SELECT or ASK")
	}
}

func (p *parser) parseSelect() (*Query, error) {
	q := &Query{Form: FormSelect, Limit: -1}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKeyword("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.isKeyword("REDUCED") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tStar {
		q.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for p.tok.kind == tVar || p.tok.kind == tLParen {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Projection = append(q.Projection, item)
		}
		if len(q.Projection) == 0 {
			return nil, p.errf("empty SELECT clause")
		}
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = g
	if err := p.parseModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind == tVar {
		v := p.tok.text
		return SelectItem{Var: v}, p.advance()
	}
	// '(' Expr AS ?var ')'
	if err := p.expect(tLParen); err != nil {
		return SelectItem{}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return SelectItem{}, err
	}
	if p.tok.kind != tVar {
		return SelectItem{}, p.errf("expected variable after AS")
	}
	v := p.tok.text
	if err := p.advance(); err != nil {
		return SelectItem{}, err
	}
	if err := p.expect(tRParen); err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Var: v, Expr: e}, nil
}

func (p *parser) parseAsk() (*Query, error) {
	q := &Query{Form: FormAsk, Limit: -1}
	if err := p.advance(); err != nil {
		return nil, err
	}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = g
	return q, nil
}

func (p *parser) parseModifiers(q *Query) error {
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			e, ok, err := p.tryParseGroupKey()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			q.GroupBy = append(q.GroupBy, e)
		}
		if len(q.GroupBy) == 0 {
			return p.errf("empty GROUP BY")
		}
	}
	if p.isKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expect(tRParen); err != nil {
				return err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return p.errf("empty HAVING")
		}
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			key, ok, err := p.tryParseOrderKey()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, key)
		}
		if len(q.OrderBy) == 0 {
			return p.errf("empty ORDER BY")
		}
	}
	for {
		switch {
		case p.isKeyword("LIMIT"):
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.parseInt()
			if err != nil {
				return err
			}
			q.Limit = n
		case p.isKeyword("OFFSET"):
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.parseInt()
			if err != nil {
				return err
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *parser) parseInt() (int, error) {
	if p.tok.kind != tInteger {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil || n < 0 {
		return 0, p.errf("bad integer %q", p.tok.text)
	}
	return n, p.advance()
}

func (p *parser) tryParseGroupKey() (Expr, bool, error) {
	switch p.tok.kind {
	case tVar:
		e := ExVar{Name: p.tok.text}
		return e, true, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, false, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, false, err
		}
		return e, true, nil
	default:
		return nil, false, nil
	}
}

func (p *parser) tryParseOrderKey() (OrderKey, bool, error) {
	switch {
	case p.isKeyword("ASC"), p.isKeyword("DESC"):
		desc := p.tok.text == "DESC"
		if err := p.advance(); err != nil {
			return OrderKey{}, false, err
		}
		if err := p.expect(tLParen); err != nil {
			return OrderKey{}, false, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return OrderKey{}, false, err
		}
		if err := p.expect(tRParen); err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Expr: e, Desc: desc}, true, nil
	case p.tok.kind == tVar:
		e := ExVar{Name: p.tok.text}
		return OrderKey{Expr: e}, true, p.advance()
	case p.tok.kind == tKeyword && isAggregateName(p.tok.text):
		e, err := p.parsePrimary()
		if err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Expr: e}, true, nil
	default:
		return OrderKey{}, false, nil
	}
}

// parseGroup parses '{' ... '}'.
func (p *parser) parseGroup() (*Group, error) {
	if err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	g := &Group{}
	for p.tok.kind != tRBrace {
		switch {
		case p.isKeyword("FILTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseBracketedOrCall()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case p.isKeyword("OPTIONAL"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Optional{Inner: inner})
		case p.isKeyword("BIND"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tLParen); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if p.tok.kind != tVar {
				return nil, p.errf("expected variable after AS")
			}
			v := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tRParen); err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Bind{Expr: e, Var: v})
		case p.isKeyword("VALUES"):
			vals, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, vals)
		case p.isKeyword("SERVICE"):
			svc, err := p.parseService()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, svc)
		case p.tok.kind == tLBrace:
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			// A group may be followed by UNION chains.
			elem := GroupElem(SubGroup{Inner: sub})
			for p.isKeyword("UNION") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				right, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				left := &Group{Elems: []GroupElem{elem}}
				elem = Union{Left: left, Right: right}
			}
			g.Elems = append(g.Elems, elem)
		default:
			if err := p.parseTriplesBlock(g); err != nil {
				return nil, err
			}
		}
		// Optional dots between elements.
		for p.tok.kind == tDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return g, p.advance() // consume '}'
}

// parseBracketedOrCall parses FILTER's constraint: either a parenthesized
// expression or a bare builtin call like REGEX(...).
func (p *parser) parseBracketedOrCall() (Expr, error) {
	if p.tok.kind == tLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tRParen)
	}
	if p.tok.kind == tKeyword {
		return p.parsePrimary()
	}
	return nil, p.errf("expected ( or builtin call after FILTER")
}

func (p *parser) parseValues() (Values, error) {
	if err := p.advance(); err != nil { // consume VALUES
		return Values{}, err
	}
	v := Values{}
	switch p.tok.kind {
	case tVar:
		v.Vars = []string{p.tok.text}
		if err := p.advance(); err != nil {
			return Values{}, err
		}
		if err := p.expect(tLBrace); err != nil {
			return Values{}, err
		}
		for p.tok.kind != tRBrace {
			t, err := p.parseDataTerm()
			if err != nil {
				return Values{}, err
			}
			v.Rows = append(v.Rows, []rdf.Term{t})
		}
		return v, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return Values{}, err
		}
		for p.tok.kind == tVar {
			v.Vars = append(v.Vars, p.tok.text)
			if err := p.advance(); err != nil {
				return Values{}, err
			}
		}
		if err := p.expect(tRParen); err != nil {
			return Values{}, err
		}
		if err := p.expect(tLBrace); err != nil {
			return Values{}, err
		}
		for p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return Values{}, err
			}
			var row []rdf.Term
			for p.tok.kind != tRParen {
				t, err := p.parseDataTerm()
				if err != nil {
					return Values{}, err
				}
				row = append(row, t)
			}
			if err := p.advance(); err != nil {
				return Values{}, err
			}
			if len(row) != len(v.Vars) {
				return Values{}, p.errf("VALUES row arity %d != %d", len(row), len(v.Vars))
			}
			v.Rows = append(v.Rows, row)
		}
		if err := p.expect(tRBrace); err != nil {
			return Values{}, err
		}
		return v, nil
	default:
		return Values{}, p.errf("expected variable or ( after VALUES")
	}
}

// parseService parses SERVICE [SILENT] <endpoint> { ... }. The endpoint must
// be a constant IRI (or prefixed name); variable endpoints are not supported.
func (p *parser) parseService() (Service, error) {
	if err := p.advance(); err != nil { // consume SERVICE
		return Service{}, err
	}
	svc := Service{}
	if p.isKeyword("SILENT") {
		svc.Silent = true
		if err := p.advance(); err != nil {
			return Service{}, err
		}
	}
	switch p.tok.kind {
	case tIRI:
		svc.Endpoint = p.tok.text
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return Service{}, err
		}
		svc.Endpoint = string(iri)
	default:
		return Service{}, p.errf("SERVICE requires a constant endpoint IRI")
	}
	if err := p.advance(); err != nil {
		return Service{}, err
	}
	inner, err := p.parseGroup()
	if err != nil {
		return Service{}, err
	}
	svc.Inner = inner
	return svc, nil
}

// parseDataTerm parses a constant term inside VALUES (UNDEF → nil).
func (p *parser) parseDataTerm() (rdf.Term, error) {
	if p.isKeyword("UNDEF") {
		return nil, p.advance()
	}
	n, err := p.parseNode(false)
	if err != nil {
		return nil, err
	}
	if n.IsVar() {
		return nil, p.errf("variables not allowed in VALUES data")
	}
	return n.Term, nil
}

// parseTriplesBlock parses subject predicateObjectList ( ';' ... )*.
func (p *parser) parseTriplesBlock(g *Group) error {
	subj, err := p.parseNode(true)
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseVerb()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseNode(true)
			if err != nil {
				return err
			}
			g.Elems = append(g.Elems, TriplePattern{S: subj, P: pred, O: obj})
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tSemicolon {
			return nil
		}
		for p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind == tDot || p.tok.kind == tRBrace {
			return nil
		}
	}
}

func (p *parser) parseVerb() (Node, error) {
	if p.isKeyword("A") {
		n := Node{Term: rdf.RDFType}
		return n, p.advance()
	}
	n, err := p.parseNode(true)
	if err != nil {
		return Node{}, err
	}
	if !n.IsVar() {
		if _, ok := n.Term.(rdf.IRI); !ok {
			return Node{}, p.errf("predicate must be an IRI or variable")
		}
	}
	return n, nil
}

// parseNode parses one triple-pattern position. allowVar permits variables.
func (p *parser) parseNode(allowVar bool) (Node, error) {
	switch p.tok.kind {
	case tVar:
		if !allowVar || p.groundOnly {
			return Node{}, p.errf("variable not allowed here")
		}
		n := Node{Var: p.tok.text}
		return n, p.advance()
	case tIRI:
		n := Node{Term: rdf.IRI(p.tok.text)}
		return n, p.advance()
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return Node{}, err
		}
		n := Node{Term: iri}
		return n, p.advance()
	case tBlank:
		n := Node{Term: rdf.BlankNode(p.tok.text)}
		return n, p.advance()
	case tAnon:
		if p.groundOnly {
			return Node{}, p.errf("anonymous blank node not allowed here")
		}
		p.bnodeSeq++
		n := Node{Var: fmt.Sprintf("_anon%d", p.bnodeSeq)}
		return n, p.advance()
	case tString:
		l, err := p.parseLiteralTail(p.tok.text)
		if err != nil {
			return Node{}, err
		}
		return Node{Term: l}, nil
	case tInteger:
		n := Node{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDInteger)}
		return n, p.advance()
	case tDecimal:
		n := Node{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDDecimal)}
		return n, p.advance()
	case tDouble:
		n := Node{Term: rdf.NewTypedLiteral(p.tok.text, rdf.XSDDouble)}
		return n, p.advance()
	case tKeyword:
		switch p.tok.text {
		case "TRUE":
			n := Node{Term: rdf.NewBoolean(true)}
			return n, p.advance()
		case "FALSE":
			n := Node{Term: rdf.NewBoolean(false)}
			return n, p.advance()
		}
		return Node{}, p.errf("unexpected keyword %s in pattern", p.tok.text)
	default:
		return Node{}, p.errf("expected term or variable, found %v", p.tok.kind)
	}
}

// parseLiteralTail consumes the string token and any @lang / ^^dt suffix.
func (p *parser) parseLiteralTail(lex string) (rdf.Literal, error) {
	if err := p.advance(); err != nil {
		return rdf.Literal{}, err
	}
	switch p.tok.kind {
	case tLangTag:
		l := rdf.NewLangLiteral(lex, p.tok.text)
		return l, p.advance()
	case tDTMarker:
		if err := p.advance(); err != nil {
			return rdf.Literal{}, err
		}
		var dt rdf.IRI
		switch p.tok.kind {
		case tIRI:
			dt = rdf.IRI(p.tok.text)
		case tPName:
			var err error
			dt, err = p.expandPName(p.tok.text)
			if err != nil {
				return rdf.Literal{}, err
			}
		default:
			return rdf.Literal{}, p.errf("expected datatype IRI")
		}
		return rdf.NewTypedLiteral(lex, dt), p.advance()
	default:
		return rdf.NewLiteral(lex), nil
	}
}

func (p *parser) expandPName(name string) (rdf.IRI, error) {
	idx := strings.Index(name, ":")
	if idx < 0 {
		return "", p.errf("not a prefixed name: %q", name)
	}
	ns, ok := p.prefixes[name[:idx]]
	if !ok {
		return "", p.errf("undeclared prefix %q", name[:idx])
	}
	return rdf.IRI(ns + name[idx+1:]), nil
}
