package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Results holds the outcome of a query.
type Results struct {
	// Form is the query form that produced the results.
	Form QueryForm
	// Vars are the projected column names, in order.
	Vars []string
	// Rows are the solution bindings (empty for ASK).
	Rows []Binding
	// Ask is the answer of an ASK query.
	Ask bool
}

// Exec parses and evaluates a SPARQL query against the store with default
// options (parallel BGP evaluation across runtime.NumCPU() workers).
func Exec(st *store.Store, query string) (*Results, error) {
	return ExecOpts(st, query, Options{})
}

// ExecOpts parses and evaluates a SPARQL query with explicit options.
func ExecOpts(st *store.Store, query string, opt Options) (*Results, error) {
	return ExecCtx(context.Background(), st, query, opt)
}

// ExecCtx parses and evaluates a SPARQL query under a context: evaluation
// stops promptly (returning an error matching both ErrEval and ctx.Err())
// when the context is cancelled or its deadline expires. Parse failures match
// ErrParse; every other failure matches ErrEval.
func ExecCtx(ctx context.Context, st *store.Store, query string, opt Options) (*Results, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return EvalCtx(ctx, st, q, opt)
}

// Eval evaluates a parsed query against the store with default options.
func Eval(st *store.Store, q *Query) (*Results, error) {
	return EvalOpts(st, q, Options{})
}

// EvalOpts evaluates a parsed query against the store. Evaluation order and
// results are identical at every parallelism setting; see Options.
func EvalOpts(st *store.Store, q *Query, opt Options) (*Results, error) {
	return EvalCtx(context.Background(), st, q, opt)
}

// EvalCtx evaluates a parsed query under a context; see ExecCtx for the
// cancellation and error-classification contract.
func EvalCtx(ctx context.Context, st *store.Store, q *Query, opt Options) (*Results, error) {
	res, err := evalCtx(ctx, st, q, opt)
	if err != nil {
		return nil, wrapEval(err)
	}
	return res, nil
}

func evalCtx(ctx context.Context, st *store.Store, q *Query, opt Options) (*Results, error) {
	e := newEngine(ctx, st, opt)
	sols, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == FormAsk {
		return &Results{Form: FormAsk, Ask: len(sols) > 0}, nil
	}

	grouped := len(q.GroupBy) > 0 || projectionHasAggregates(q)
	var rows []Binding
	var vars []string
	if grouped {
		rows, vars, err = evalGrouped(q, sols)
		if err != nil {
			return nil, err
		}
	} else {
		rows, vars, err = evalUngrouped(q, sols)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY.
	if len(q.OrderBy) > 0 {
		sortRows(rows, q.OrderBy)
	}
	// Hidden order columns are dropped after sorting.
	stripHidden(rows)

	// DISTINCT.
	if q.Distinct {
		rows = distinctRows(rows, vars)
	}
	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Results{Form: FormSelect, Vars: vars, Rows: rows}, nil
}

func projectionHasAggregates(q *Query) bool {
	for _, item := range q.Projection {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case ExAggregate:
		return true
	case ExBinary:
		return exprHasAggregate(ex.Left) || exprHasAggregate(ex.Right)
	case ExUnary:
		return exprHasAggregate(ex.Expr)
	case ExCall:
		for _, a := range ex.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	}
	return false
}

// evalUngrouped projects plain (non-aggregate) SELECT results.
func evalUngrouped(q *Query, sols []Binding) ([]Binding, []string, error) {
	var vars []string
	if q.Star {
		vars = allVars(sols)
	} else {
		for _, item := range q.Projection {
			vars = append(vars, item.Var)
		}
	}
	rows := make([]Binding, 0, len(sols))
	for _, s := range sols {
		row := Binding{}
		if q.Star {
			for _, v := range vars {
				if t, ok := s[v]; ok {
					row[v] = t
				}
			}
		} else {
			for _, item := range q.Projection {
				if item.Expr == nil {
					if t, ok := s[item.Var]; ok {
						row[item.Var] = t
					}
				} else if t, err := evalExpr(item.Expr, s); err == nil {
					row[item.Var] = t
				}
			}
		}
		// Hidden sort keys for expression order-by on the original solution.
		for i, key := range q.OrderBy {
			if t, err := evalExpr(key.Expr, s); err == nil {
				row[hiddenOrdVar(i)] = t
			}
		}
		rows = append(rows, row)
	}
	return rows, vars, nil
}

// evalGrouped implements GROUP BY + aggregates + HAVING.
func evalGrouped(q *Query, sols []Binding) ([]Binding, []string, error) {
	type grp struct {
		key  []rdf.Term
		rows []Binding
	}
	groups := map[string]*grp{}
	var order []string
	for _, s := range sols {
		key := make([]rdf.Term, len(q.GroupBy))
		var sig strings.Builder
		for i, ge := range q.GroupBy {
			if t, err := evalExpr(ge, s); err == nil {
				key[i] = t
				sig.WriteString(t.String())
			}
			sig.WriteByte('|')
		}
		g, ok := groups[sig.String()]
		if !ok {
			g = &grp{key: key}
			groups[sig.String()] = g
			order = append(order, sig.String())
		}
		g.rows = append(g.rows, s)
	}
	// Implicit single group for aggregate queries without GROUP BY — but only
	// when there are solutions; an empty input yields one empty group per the
	// SPARQL spec (COUNT(*) = 0).
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &grp{}
		order = append(order, "")
	}

	var vars []string
	for _, item := range q.Projection {
		vars = append(vars, item.Var)
	}

	var rows []Binding
	for _, sig := range order {
		g := groups[sig]
		// Representative binding carries the group key values.
		rep := Binding{}
		for i, ge := range q.GroupBy {
			if v, ok := ge.(ExVar); ok && g.key[i] != nil {
				rep[v.Name] = g.key[i]
			}
		}
		// HAVING.
		keep := true
		for _, h := range q.Having {
			t, err := evalAggExpr(h, g.rows, rep)
			if err != nil {
				keep = false
				break
			}
			v, ok := rdf.EffectiveBoolean(t)
			if !ok || !v {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := Binding{}
		for _, item := range q.Projection {
			var t rdf.Term
			var err error
			if item.Expr == nil {
				// A bare variable must be a group key.
				if v, ok := rep[item.Var]; ok {
					t = v
				} else {
					err = fmt.Errorf("sparql: ?%s is not a GROUP BY key", item.Var)
				}
			} else {
				t, err = evalAggExpr(item.Expr, g.rows, rep)
			}
			if err == nil && t != nil {
				row[item.Var] = t
			}
		}
		for i, key := range q.OrderBy {
			if t, err := evalAggExpr(key.Expr, g.rows, rep); err == nil {
				row[hiddenOrdVar(i)] = t
			}
		}
		rows = append(rows, row)
	}
	return rows, vars, nil
}

func hiddenOrdVar(i int) string { return fmt.Sprintf("_ord%d", i) }

func sortRows(rows []Binding, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range keys {
			ti := rows[i][hiddenOrdVar(k)]
			tj := rows[j][hiddenOrdVar(k)]
			c := rdf.Compare(ti, tj)
			if key.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func stripHidden(rows []Binding) {
	for _, r := range rows {
		for k := range r {
			if strings.HasPrefix(k, "_ord") {
				delete(r, k)
			}
		}
	}
}

func distinctRows(rows []Binding, vars []string) []Binding {
	seen := map[string]struct{}{}
	out := rows[:0:0]
	for _, r := range rows {
		var sig strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				sig.WriteString(t.String())
			}
			sig.WriteByte('|')
		}
		if _, dup := seen[sig.String()]; !dup {
			seen[sig.String()] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}
