package sparql

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Results holds the outcome of a query.
type Results struct {
	// Form is the query form that produced the results.
	Form QueryForm
	// Vars are the projected column names, in order.
	Vars []string
	// Rows are the solution bindings (empty for ASK).
	Rows []Binding
	// Ask is the answer of an ASK query.
	Ask bool
}

// Exec parses and evaluates a SPARQL query against the store with default
// options (parallel BGP evaluation across runtime.NumCPU() workers).
func Exec(st Source, query string) (*Results, error) {
	return ExecOpts(st, query, Options{})
}

// ExecOpts parses and evaluates a SPARQL query with explicit options.
func ExecOpts(st Source, query string, opt Options) (*Results, error) {
	//lint:allow ctxflow compat wrapper: ExecCtx is the cancellable form
	return ExecCtx(context.Background(), st, query, opt)
}

// ExecCtx parses and evaluates a SPARQL query under a context: evaluation
// stops promptly (returning an error matching both ErrEval and ctx.Err())
// when the context is cancelled or its deadline expires. Parse failures match
// ErrParse; every other failure matches ErrEval.
func ExecCtx(ctx context.Context, st Source, query string, opt Options) (*Results, error) {
	var start time.Time
	if opt.Trace != nil {
		start = time.Now()
	}
	q, err := Parse(query)
	if opt.Trace != nil {
		opt.Trace.Add(nil, "parse").Set("", "", 0, 0, start)
	}
	if err != nil {
		return nil, err
	}
	return EvalCtx(ctx, st, q, opt)
}

// Eval evaluates a parsed query against the store with default options.
func Eval(st Source, q *Query) (*Results, error) {
	return EvalOpts(st, q, Options{})
}

// EvalOpts evaluates a parsed query against the store. Evaluation order and
// results are identical at every parallelism setting; see Options.
func EvalOpts(st Source, q *Query, opt Options) (*Results, error) {
	//lint:allow ctxflow compat wrapper: EvalCtx is the cancellable form
	return EvalCtx(context.Background(), st, q, opt)
}

// EvalCtx evaluates a parsed query under a context; see ExecCtx for the
// cancellation and error-classification contract.
func EvalCtx(ctx context.Context, st Source, q *Query, opt Options) (*Results, error) {
	res, err := evalCtx(ctx, st, q, opt)
	if err != nil {
		return nil, wrapEval(err)
	}
	return res, nil
}

func evalCtx(ctx context.Context, st Source, q *Query, opt Options) (*Results, error) {
	return evalWithEngine(newEngine(ctx, st, opt), q, opt)
}

func evalWithEngine(e *engine, q *Query, opt Options) (res *Results, err error) {
	execStrategy := "materialized"
	if e.trace != nil {
		execStart := time.Now()
		e.exec = e.trace.Add(nil, "execute")
		defer func() {
			e.exec.Set("", execStrategy, 0, resultRows(res), execStart)
		}()
	}
	// Early-termination fast paths: LIMIT-pushdown scans, the bounded
	// ORDER BY top-k heap, and first-solution ASK. They return exactly the
	// rows the materializing pipeline below would; see stream.go.
	if !opt.NoStream {
		if r, ok, ferr := e.evalStreamFast(q); ok {
			if e.met != nil {
				e.met.QueriesStreamed.Inc()
			}
			execStrategy = "streamed"
			return r, ferr
		}
	}
	if e.met != nil {
		e.met.QueriesMaterialized.Inc()
	}
	sols, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == FormAsk {
		return &Results{Form: FormAsk, Ask: len(sols) > 0}, nil
	}

	grouped := len(q.GroupBy) > 0 || projectionHasAggregates(q)
	var rows []Binding
	var vars []string
	if grouped {
		rows, vars, err = evalGrouped(q, sols)
		if err != nil {
			return nil, err
		}
	} else {
		rows, vars, err = evalUngrouped(q, sols)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY; the hidden key columns are dropped after sorting.
	hidden := hiddenOrdNames(len(q.OrderBy))
	sortRows(rows, q.OrderBy, hidden)
	stripHidden(rows, hidden)

	// DISTINCT.
	if q.Distinct {
		rows = distinctRows(rows, vars)
	}
	rows = sliceOffsetLimit(rows, q.Offset, q.Limit)
	return &Results{Form: FormSelect, Vars: vars, Rows: rows}, nil
}

// resultRows counts a result's rows for the execute span (ASK counts its
// answer as 0/1).
func resultRows(r *Results) int {
	if r == nil {
		return 0
	}
	if r.Form == FormAsk {
		if r.Ask {
			return 1
		}
		return 0
	}
	return len(r.Rows)
}

// sliceOffsetLimit applies the OFFSET/LIMIT window (limit < 0 = no limit).
func sliceOffsetLimit(rows []Binding, offset, limit int) []Binding {
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

func projectionHasAggregates(q *Query) bool {
	for _, item := range q.Projection {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case ExAggregate:
		return true
	case ExBinary:
		return exprHasAggregate(ex.Left) || exprHasAggregate(ex.Right)
	case ExUnary:
		return exprHasAggregate(ex.Expr)
	case ExCall:
		for _, a := range ex.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	}
	return false
}

// evalUngrouped projects plain (non-aggregate) SELECT results. SELECT *
// columns are resolved statically (every variable the pattern can bind,
// sorted — see streamVars), so the header does not depend on which
// evaluation path ran or which rows a LIMIT happened to keep.
func evalUngrouped(q *Query, sols []Binding) ([]Binding, []string, error) {
	vars := streamVars(q)
	hidden := hiddenOrdNames(len(q.OrderBy))
	rows := make([]Binding, 0, len(sols))
	for _, s := range sols {
		rows = append(rows, projectSolution(q, vars, s, hidden))
	}
	return rows, vars, nil
}

// projectSolution builds one projected result row from a solution: the
// star or explicit projection, plus — when hidden names are supplied — the
// ORDER BY key values evaluated on the original solution and stashed under
// those names for sortRows.
func projectSolution(q *Query, vars []string, s Binding, hidden []string) Binding {
	row := Binding{}
	if q.Star {
		for _, v := range vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
	} else {
		for _, item := range q.Projection {
			if item.Expr == nil {
				if t, ok := s[item.Var]; ok {
					row[item.Var] = t
				}
			} else if t, err := evalExpr(item.Expr, s); err == nil {
				row[item.Var] = t
			}
		}
	}
	for i := range hidden {
		if t, err := evalExpr(q.OrderBy[i].Expr, s); err == nil {
			row[hidden[i]] = t
		}
	}
	return row
}

// evalGrouped implements GROUP BY + aggregates + HAVING.
func evalGrouped(q *Query, sols []Binding) ([]Binding, []string, error) {
	type grp struct {
		key  []rdf.Term
		rows []Binding
	}
	groups := map[string]*grp{}
	var order []string
	for _, s := range sols {
		key := make([]rdf.Term, len(q.GroupBy))
		var sig strings.Builder
		for i, ge := range q.GroupBy {
			// Length-prefixed key components, for the same reason as
			// distinctRows: a bare joiner would let ("x|","y") and
			// ("x","|y") collide and merge two distinct groups.
			if t, err := evalExpr(ge, s); err == nil {
				key[i] = t
				ks := t.String()
				sig.WriteString(strconv.Itoa(len(ks)))
				sig.WriteByte(':')
				sig.WriteString(ks)
			} else {
				sig.WriteByte('~')
			}
		}
		g, ok := groups[sig.String()]
		if !ok {
			g = &grp{key: key}
			groups[sig.String()] = g
			order = append(order, sig.String())
		}
		g.rows = append(g.rows, s)
	}
	// Implicit single group for aggregate queries without GROUP BY — but only
	// when there are solutions; an empty input yields one empty group per the
	// SPARQL spec (COUNT(*) = 0).
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &grp{}
		order = append(order, "")
	}

	var vars []string
	for _, item := range q.Projection {
		vars = append(vars, item.Var)
	}

	hidden := hiddenOrdNames(len(q.OrderBy))
	var rows []Binding
	for _, sig := range order {
		g := groups[sig]
		// Representative binding carries the group key values.
		rep := Binding{}
		for i, ge := range q.GroupBy {
			if v, ok := ge.(ExVar); ok && g.key[i] != nil {
				rep[v.Name] = g.key[i]
			}
		}
		// HAVING.
		keep := true
		for _, h := range q.Having {
			t, err := evalAggExpr(h, g.rows, rep)
			if err != nil {
				keep = false
				break
			}
			v, ok := rdf.EffectiveBoolean(t)
			if !ok || !v {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := Binding{}
		for _, item := range q.Projection {
			var t rdf.Term
			var err error
			if item.Expr == nil {
				// A bare variable must be a group key.
				if v, ok := rep[item.Var]; ok {
					t = v
				} else {
					err = fmt.Errorf("sparql: ?%s is not a GROUP BY key", item.Var)
				}
			} else {
				t, err = evalAggExpr(item.Expr, g.rows, rep)
			}
			if err == nil && t != nil {
				row[item.Var] = t
			}
		}
		for i, key := range q.OrderBy {
			if t, err := evalAggExpr(key.Expr, g.rows, rep); err == nil {
				row[hidden[i]] = t
			}
		}
		rows = append(rows, row)
	}
	return rows, vars, nil
}

// hiddenOrdNames returns the engine-generated column names that carry ORDER
// BY key values through sorting, one per sort key. The NUL prefix cannot
// appear in a parsed variable name (the lexer accepts only [A-Za-z0-9_]),
// so a legal user variable like ?_ord0 can never collide with — nor be
// clobbered or deleted alongside — a hidden column.
func hiddenOrdNames(n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "\x00ord" + strconv.Itoa(i)
	}
	return out
}

// sortRows stable-sorts rows by the hidden key columns (hidden[i] holds the
// value of keys[i]). Per SPARQL's ordering, an unbound key sorts before any
// bound term (rdf.Compare treats nil as least); DESC reverses, putting
// unbound rows last.
func sortRows(rows []Binding, keys []OrderKey, hidden []string) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range keys {
			ti := rows[i][hidden[k]]
			tj := rows[j][hidden[k]]
			c := rdf.Compare(ti, tj)
			if key.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// stripHidden deletes exactly the engine-generated hidden sort columns from
// every row; user bindings — including names like ?_ord0 that a prefix
// match would catch — are untouched.
func stripHidden(rows []Binding, hidden []string) {
	if len(hidden) == 0 {
		return
	}
	for _, r := range rows {
		for _, h := range hidden {
			delete(r, h)
		}
	}
}

// distinctRows removes duplicate rows, keeping first occurrences. Dedup
// signatures are length-prefixed per column ("<len>:<term>", "~" for an
// unbound column), so a term whose lexical form contains a would-be
// separator can no longer alias a column boundary (with a bare "|" joiner,
// ("a|b","c") and ("a","b|c") collided and a distinct row was dropped).
func distinctRows(rows []Binding, vars []string) []Binding {
	seen := map[string]struct{}{}
	out := rows[:0:0]
	var sig strings.Builder
	for _, r := range rows {
		sig.Reset()
		for _, v := range vars {
			if t, ok := r[v]; ok {
				s := t.String()
				sig.WriteString(strconv.Itoa(len(s)))
				sig.WriteByte(':')
				sig.WriteString(s)
			} else {
				sig.WriteByte('~')
			}
		}
		if _, dup := seen[sig.String()]; !dup {
			seen[sig.String()] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}
