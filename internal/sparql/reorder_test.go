package sparql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func reorderStore(t *testing.T) *store.Store {
	t.Helper()
	ns := rdf.IRI("http://r/")
	var triples []rdf.Triple
	for i := 0; i < 1000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://r/ent/%d", i))
		triples = append(triples, rdf.T(s, rdf.RDFType, ns+"Item"))
	}
	// Exactly one entity carries the selective property.
	triples = append(triples, rdf.T(rdf.IRI("http://r/ent/42"), ns+"special", rdf.NewLiteral("yes")))
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func tpVar(s string) Node       { return Node{Var: s} }
func tpTerm(term rdf.Term) Node { return Node{Term: term} }
func tpIRI(s string) Node       { return Node{Term: rdf.IRI(s)} }
func patterns(elems []GroupElem) []TriplePattern {
	var out []TriplePattern
	for _, el := range elems {
		if tp, ok := el.(TriplePattern); ok {
			out = append(out, tp)
		}
	}
	return out
}

// The estimator must run the 1-triple `?s :special "yes"` pattern before the
// 1000-triple `?s rdf:type :Item` pattern, whatever order the author wrote.
func TestReorderSelectiveBeforeBroad(t *testing.T) {
	e := &engine{st: reorderStore(t), par: 1}
	broad := TriplePattern{S: tpVar("s"), P: tpTerm(rdf.RDFType), O: tpIRI("http://r/Item")}
	selective := TriplePattern{S: tpVar("s"), P: tpIRI("http://r/special"), O: tpTerm(rdf.NewLiteral("yes"))}
	for _, order := range [][]GroupElem{
		{broad, selective},
		{selective, broad},
	} {
		got := patterns(e.reorderTriplePatterns(order))
		if len(got) != 2 || got[0] != selective {
			t.Errorf("order %v: selective pattern not first: %v", order, got)
		}
	}
}

// A pattern with no bound position sorts after one constrained by a constant
// or an already-bound join variable.
func TestReorderUnboundLast(t *testing.T) {
	e := &engine{st: reorderStore(t), par: 1}
	unbound := TriplePattern{S: tpVar("a"), P: tpVar("b"), O: tpVar("c")}
	typed := TriplePattern{S: tpVar("s"), P: tpTerm(rdf.RDFType), O: tpIRI("http://r/Item")}
	got := patterns(e.reorderTriplePatterns([]GroupElem{unbound, typed}))
	if len(got) != 2 || got[0] != typed {
		t.Errorf("unbound pattern should run last, got %v", got)
	}
}

// A pattern whose subject joins an already-bound variable must beat an
// unrelated scan of the same predicate size: the join divides the fan-out by
// the predicate's distinct-subject count.
func TestReorderPrefersJoinBoundPattern(t *testing.T) {
	ns := "http://r/"
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		s := rdf.IRI(fmt.Sprintf("%sent/%d", ns, i))
		triples = append(triples, rdf.T(s, rdf.IRI(ns+"name"), rdf.NewLiteral(fmt.Sprintf("n%d", i))))
		triples = append(triples, rdf.T(s, rdf.IRI(ns+"age"), rdf.NewInteger(int64(i))))
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	e := &engine{st: st, par: 1}
	seed := TriplePattern{S: tpVar("s"), P: tpIRI(ns + "name"), O: tpTerm(rdf.NewLiteral("n7"))}
	joined := TriplePattern{S: tpVar("s"), P: tpIRI(ns + "age"), O: tpVar("v")}
	other := TriplePattern{S: tpVar("x"), P: tpIRI(ns + "name"), O: tpVar("y")}
	got := patterns(e.reorderTriplePatterns([]GroupElem{other, joined, seed}))
	want := []TriplePattern{seed, joined, other}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("greedy order = %v, want %v", got, want)
		}
	}
}

// Non-pattern elements (FILTER-bearing subgroups, BIND, VALUES) must keep
// their positions; only contiguous pattern runs are permuted.
func TestReorderKeepsNonPatternPositions(t *testing.T) {
	e := &engine{st: reorderStore(t), par: 1}
	broad := TriplePattern{S: tpVar("s"), P: tpTerm(rdf.RDFType), O: tpIRI("http://r/Item")}
	selective := TriplePattern{S: tpVar("s"), P: tpIRI("http://r/special"), O: tpTerm(rdf.NewLiteral("yes"))}
	bind := Bind{Var: "b", Expr: ExTerm{Term: rdf.NewInteger(1)}}
	got := e.reorderTriplePatterns([]GroupElem{broad, bind, selective})
	if _, ok := got[1].(Bind); !ok {
		t.Fatalf("BIND moved: %v", got)
	}
	// The runs on either side are singletons, so order is unchanged.
	if got[0] != GroupElem(broad) || got[2] != GroupElem(selective) {
		t.Errorf("singleton runs permuted across BIND: %v", got)
	}
}

// solutionKeys renders each row as a canonical string so multisets compare
// order-independently.
func solutionKeys(res *Results) []string {
	keys := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var parts []string
		for _, v := range res.Vars {
			if t, ok := row[v]; ok {
				parts = append(parts, v+"="+t.String())
			} else {
				parts = append(parts, v+"=")
			}
		}
		keys = append(keys, strings.Join(parts, "|"))
	}
	sort.Strings(keys)
	return keys
}

// Reordered evaluation must produce exactly the solutions of the naive
// textual order, on a dataset large enough that the orders actually differ.
func TestReorderEquivalentToNaiveOrder(t *testing.T) {
	st, err := store.Load(gen.EntityDataset(gen.EntityOptions{
		Entities: 1500, NumericProps: 1, CategoryProps: 1, LinkProps: 1, Seed: 99,
	}))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// Written worst-first: the unconstrained link scan leads.
		fmt.Sprintf(`SELECT ?e ?o ?v WHERE { ?e <%s> ?o . ?o <%s> ?v . ?e <%s> "category-3" . }`,
			string(gen.Prop("rel0")), string(gen.Prop("num0")), string(gen.Prop("cat0"))),
		fmt.Sprintf(`SELECT ?e ?c WHERE { ?e <%s> ?c . ?e <%s> "category-1" . }`,
			string(rdf.RDFType), string(gen.Prop("cat0"))),
	}
	for _, q := range queries {
		parsed, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		planned, err := EvalOpts(st, parsed, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(planned.Rows) == 0 {
			t.Fatalf("query %q returned no rows; test data broken", q)
		}
		naive := evalNoReorder(t, st, parsed)
		got, want := solutionKeys(planned), solutionKeys(naive)
		if len(got) != len(want) {
			t.Fatalf("query %q: planned %d rows, naive %d rows", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q: solution multisets differ at %d: %q vs %q", q, i, got[i], want[i])
			}
		}
	}
}

// evalNoReorder runs the full pipeline with the planner disabled.
func evalNoReorder(t *testing.T, st *store.Store, q *Query) *Results {
	t.Helper()
	e := &engine{st: st, par: 1, noReorder: true}
	sols, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		t.Fatal(err)
	}
	rows, vars, err := evalUngrouped(q, sols)
	if err != nil {
		t.Fatal(err)
	}
	stripHidden(rows, hiddenOrdNames(len(q.OrderBy)))
	return &Results{Form: FormSelect, Vars: vars, Rows: rows}
}

// estimateFanout sanity: a dead pattern (constant absent from the store)
// estimates zero and therefore runs first, short-circuiting the group.
func TestEstimateFanoutDeadPatternFirst(t *testing.T) {
	e := &engine{st: reorderStore(t), par: 1}
	dead := TriplePattern{S: tpVar("s"), P: tpIRI("http://r/nosuch"), O: tpVar("o")}
	if est := e.estimateFanout(dead, map[string]bool{}); est != 0 {
		t.Fatalf("estimateFanout(dead) = %v, want 0", est)
	}
	broad := TriplePattern{S: tpVar("s"), P: tpTerm(rdf.RDFType), O: tpIRI("http://r/Item")}
	got := patterns(e.reorderTriplePatterns([]GroupElem{broad, dead}))
	if got[0] != dead {
		t.Errorf("dead pattern should be scheduled first: %v", got)
	}
}
