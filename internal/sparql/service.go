package sparql

import (
	"context"
	"fmt"
)

// ServiceEvaluator evaluates a SERVICE clause against a remote endpoint. The
// engine itself never talks to the network; the federation layer
// (internal/federation) supplies the implementation through
// Options.Service, which keeps this package free of HTTP concerns and the
// import graph acyclic.
type ServiceEvaluator interface {
	// EvalService evaluates call.Pattern against call.Endpoint and returns
	// the input bindings joined with the remote solutions. Implementations
	// must preserve multiset semantics: the result is exactly
	// eval(remote pattern) ⋈ call.Bindings.
	EvalService(ctx context.Context, call *ServiceCall) ([]Binding, error)
}

// ServiceCall carries one SERVICE evaluation request to the evaluator.
type ServiceCall struct {
	// Endpoint is the remote SPARQL endpoint IRI from the query.
	Endpoint string
	// Silent mirrors SERVICE SILENT (the engine already implements the
	// degrade-to-identity contract; evaluators may use it to soften
	// logging or skip retries).
	Silent bool
	// Pattern is the inner graph pattern to evaluate remotely.
	Pattern *Group
	// Bindings are the local solutions accumulated so far; the evaluator
	// joins the remote solutions with them.
	Bindings []Binding
}

// evalService dispatches a SERVICE element to the engine's evaluator. With
// no evaluator configured, or when the evaluator fails, SERVICE SILENT
// degrades to the identity solution (the input passes through unchanged,
// i.e. the query falls back to its local partial result) while a plain
// SERVICE fails the query.
func (e *engine) evalService(svc Service, input []Binding) ([]Binding, error) {
	if e.svc == nil {
		if svc.Silent {
			return input, nil
		}
		return nil, fmt.Errorf("sparql: SERVICE <%s>: no federation evaluator configured", svc.Endpoint)
	}
	ctx := e.ctx
	if ctx == nil {
		//lint:allow ctxflow fallback for engines built via Eval (no caller ctx); EvalCtx threads one
		ctx = context.Background()
	}
	out, err := e.svc.EvalService(ctx, &ServiceCall{
		Endpoint: svc.Endpoint,
		Silent:   svc.Silent,
		Pattern:  svc.Inner,
		Bindings: input,
	})
	if err != nil {
		// Cancellation must win over SILENT: a killed query stays killed.
		if cerr := e.cancelled(); cerr != nil {
			return nil, cerr
		}
		if svc.Silent {
			return input, nil
		}
		return nil, fmt.Errorf("sparql: SERVICE <%s>: %w", svc.Endpoint, err)
	}
	return out, nil
}
