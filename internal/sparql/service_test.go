package sparql

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestParseService(t *testing.T) {
	q, err := Parse(`SELECT ?s ?o WHERE {
		?s <http://example.org/p> ?x .
		SERVICE <http://remote.example/sparql> { ?x <http://example.org/q> ?o }
	}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var svc Service
	found := false
	for _, el := range q.Where.Elems {
		if s, ok := el.(Service); ok {
			svc, found = s, true
		}
	}
	if !found {
		t.Fatalf("no Service element in %#v", q.Where.Elems)
	}
	if svc.Endpoint != "http://remote.example/sparql" {
		t.Errorf("endpoint = %q", svc.Endpoint)
	}
	if svc.Silent {
		t.Error("Silent = true for plain SERVICE")
	}
	if len(svc.Inner.Elems) != 1 {
		t.Errorf("inner elems = %d, want 1", len(svc.Inner.Elems))
	}
}

func TestParseServiceSilent(t *testing.T) {
	q, err := Parse(`PREFIX ex: <http://example.org/>
		ASK { SERVICE SILENT ex:sparql { ?s ?p ?o } }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	svc, ok := q.Where.Elems[0].(Service)
	if !ok {
		t.Fatalf("elem 0 is %T, want Service", q.Where.Elems[0])
	}
	if !svc.Silent {
		t.Error("Silent = false for SERVICE SILENT")
	}
	if svc.Endpoint != "http://example.org/sparql" {
		t.Errorf("endpoint = %q (prefixed name should expand)", svc.Endpoint)
	}
}

func TestParseServiceErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT * WHERE { SERVICE ?ep { ?s ?p ?o } }`, // variable endpoint unsupported
		`SELECT * WHERE { SERVICE }`,
		`SELECT * WHERE { SERVICE <http://x/> ?s ?p ?o }`, // missing braces
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q): error %v does not match ErrParse", q, err)
		}
	}
}

// TestFormatGroupRoundTrip checks that serializing a parsed WHERE group and
// re-parsing it yields a query answering identically.
func TestFormatGroupRoundTrip(t *testing.T) {
	st := testStore(t)
	queries := []string{
		`SELECT * WHERE { ?s <http://xmlns.com/foaf/0.1/name> ?n }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { ?s foaf:knows ?o . ?o foaf:name ?n . FILTER (?n != "Carol") }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { ?s foaf:age ?a . FILTER (?a > 26 && ?a < 40) }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { ?s a foaf:Person . OPTIONAL { ?s foaf:knows ?k } }`,
		`PREFIX ex: <http://example.org/>
		 SELECT * WHERE { { ?s ex:label ?l } UNION { ?s ex:population ?l } }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { ?s foaf:age ?a . BIND(?a + 1 AS ?next) }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { VALUES ?n { "Alice" "Bob" } ?s foaf:name ?n }`,
		`PREFIX ex: <http://example.org/>
		 SELECT * WHERE { ?s ex:label ?l . FILTER (LANG(?l) = "en") }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		 SELECT * WHERE { ?s foaf:name ?n . FILTER REGEX(?n, "^[AB]") }`,
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := FormatGroup(q.Where)
		re, err := Parse("SELECT * WHERE " + text)
		if err != nil {
			t.Fatalf("re-Parse of %q (from %q): %v", text, src, err)
		}
		want := exec(t, st, src)
		got, err := Eval(st, re)
		if err != nil {
			t.Fatalf("Eval of reparse %q: %v", text, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("round trip of %q: %d rows, want %d (text %q)", src, len(got.Rows), len(want.Rows), text)
		}
		if canonRows(got.Rows) != canonRows(want.Rows) {
			t.Errorf("round trip of %q changed results\n got %s\nwant %s", src, canonRows(got.Rows), canonRows(want.Rows))
		}
	}
}

func canonRows(rows []Binding) string {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		// Insertion-sort the few keys; deterministic line per row.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + r[k].String() + " ")
		}
		lines = append(lines, sb.String())
	}
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	return strings.Join(lines, "\n")
}

func TestBindableVars(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?s <http://x/p> ?o .
		OPTIONAL { ?o <http://x/q> ?v }
		BIND(1 AS ?b)
		VALUES ?w { 1 }
		FILTER (?f > 0)
	}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := map[string]bool{}
	for _, v := range BindableVars(q.Where) {
		got[v] = true
	}
	for _, want := range []string{"s", "o", "v", "b", "w"} {
		if !got[want] {
			t.Errorf("BindableVars missing %q (got %v)", want, got)
		}
	}
	if got["f"] {
		t.Error("BindableVars includes FILTER-only var f")
	}
}

func TestCertainVars(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?s <http://x/p> ?o .
		OPTIONAL { ?s <http://x/q> ?opt }
		{ ?s <http://x/a> ?both } UNION { ?both <http://x/b> ?s . ?left <http://x/c> ?s }
		BIND(1 AS ?bound)
		VALUES (?v ?u) { (1 UNDEF) (2 3) }
	}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := map[string]bool{}
	for _, v := range CertainVars(q.Where) {
		got[v] = true
	}
	for _, want := range []string{"s", "o", "both", "v"} {
		if !got[want] {
			t.Errorf("CertainVars missing %q (got %v)", want, got)
		}
	}
	for _, not := range []string{"opt", "left", "bound", "u"} {
		if got[not] {
			t.Errorf("CertainVars wrongly includes %q (optional/one-branch/bind/undef)", not)
		}
	}
}

func TestHasService(t *testing.T) {
	with, err := Parse(`SELECT * WHERE { { OPTIONAL { SERVICE <http://x/> { ?s ?p ?o } } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !HasService(with.Where) {
		t.Error("HasService missed a nested SERVICE")
	}
	without, err := Parse(`SELECT * WHERE { ?s <http://x/service> "service" }`)
	if err != nil {
		t.Fatal(err)
	}
	if HasService(without.Where) {
		t.Error("HasService false positive on service-mentioning terms")
	}
}

// stubService records calls and returns canned rows or an error.
type stubService struct {
	calls []*ServiceCall
	rows  []Binding
	err   error
}

func (s *stubService) EvalService(_ context.Context, call *ServiceCall) ([]Binding, error) {
	s.calls = append(s.calls, call)
	if s.err != nil {
		return nil, s.err
	}
	return s.rows, nil
}

func TestServiceEvaluatorDispatch(t *testing.T) {
	st := testStore(t)
	stub := &stubService{rows: []Binding{
		{"s": rdf.IRI("http://example.org/alice"), "mail": rdf.NewLiteral("alice@example.org")},
	}}
	res, err := ExecOpts(st, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT ?s ?mail WHERE {
			?s foaf:name "Alice" .
			SERVICE <http://remote/sparql> { ?s <http://example.org/mail> ?mail }
		}`, Options{Service: stub})
	if err != nil {
		t.Fatalf("ExecOpts: %v", err)
	}
	if len(stub.calls) != 1 {
		t.Fatalf("evaluator called %d times, want 1", len(stub.calls))
	}
	call := stub.calls[0]
	if call.Endpoint != "http://remote/sparql" {
		t.Errorf("endpoint = %q", call.Endpoint)
	}
	if len(call.Bindings) != 1 {
		t.Errorf("evaluator received %d bindings, want 1 (the ?s solution)", len(call.Bindings))
	}
	if len(res.Rows) != 1 || res.Rows[0]["mail"] != rdf.NewLiteral("alice@example.org") {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestServiceWithoutEvaluatorFails(t *testing.T) {
	st := testStore(t)
	_, err := Exec(st, `SELECT * WHERE { SERVICE <http://remote/sparql> { ?s ?p ?o } }`)
	if err == nil {
		t.Fatal("expected error for SERVICE without evaluator")
	}
	if !errors.Is(err, ErrEval) {
		t.Errorf("error %v does not match ErrEval", err)
	}
}

func TestServiceSilentDegrades(t *testing.T) {
	st := testStore(t)
	q := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT ?s WHERE {
			?s foaf:name "Alice" .
			SERVICE SILENT <http://remote/sparql> { ?s <http://example.org/mail> ?mail }
		}`

	// No evaluator at all: the local partial result comes back.
	res, err := Exec(st, q)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (local partial result)", len(res.Rows))
	}

	// A failing evaluator: same degradation.
	stub := &stubService{err: errors.New("endpoint unreachable")}
	res, err = ExecOpts(st, q, Options{Service: stub})
	if err != nil {
		t.Fatalf("ExecOpts with failing evaluator: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (degraded partial result)", len(res.Rows))
	}
}

func TestServiceSilentDoesNotMaskCancellation(t *testing.T) {
	st := testStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	stub := &stubService{err: context.Canceled}
	cancel()
	_, err := ExecCtx(ctx, st, `SELECT * WHERE {
		SERVICE SILENT <http://remote/sparql> { ?s ?p ?o }
	}`, Options{Service: stub})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
}
