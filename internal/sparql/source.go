package sparql

import (
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Source is the triple-matching surface the engine evaluates against.
// *store.Store satisfies it; tests and instrumentation wrap one to observe
// or throttle scans (the streaming endpoint's first-row-before-completion
// test runs against a deliberately slow wrapper). Implementations must be
// safe for concurrent ForEach calls — the parallel BGP executor probes
// disjoint binding chunks from multiple goroutines.
type Source interface {
	// ForEach streams every triple matching p to fn in the store's scan
	// order until fn returns false, under one consistent read view; fn
	// must not scan the source again (see store.ForEach's locking
	// contract).
	ForEach(p store.Pattern, fn func(rdf.Triple) bool)
	// ForEachPage streams up to max matching triples starting at scan
	// position pos, returning the resume position and whether the scan is
	// exhausted. The read view is held per page only, so the streaming
	// driver can evaluate joins and write to clients between pages
	// without blocking the store's writers (see store.ForEachPage).
	ForEachPage(p store.Pattern, pos, max int, fn func(rdf.Triple) bool) (next int, done bool)
	// LayoutEpoch reports the source's index-layout epoch; a change
	// between two pages of one scan means positional cursors were
	// invalidated (see store.LayoutEpoch) and the scan must restart or
	// abort.
	LayoutEpoch() uint64
	// EstimateCount returns the index-range cardinality estimate for the
	// bound positions of p (join planning).
	EstimateCount(p store.Pattern) int
	// NumTerms returns the dictionary size (join planning fallback).
	NumTerms() int
	// Cardinalities returns the per-predicate distinct-value table (join
	// planning).
	Cardinalities() map[rdf.IRI]store.PredCardinality
}

// IDSource is the dictionary-level extension of Source: a source whose terms
// are densely ID-encoded and whose permutation indexes can serve sorted
// ID-space runs. When the engine's source implements it, basic graph
// patterns are evaluated entirely over uint32 IDs — equal-prefix joins
// become merge joins over ScanIDs runs, everything else probes ForEachID —
// and terms are decoded once per emitted solution via the batch Terms call.
// Sources that only implement Source (test wrappers, instrumented stores)
// transparently fall back to the term-space hash path.
type IDSource interface {
	Source
	// LookupTermID resolves a term to its dictionary ID; ok=false means the
	// term cannot occur in any triple.
	LookupTermID(t rdf.Term) (store.ID, bool)
	// Terms batch-decodes IDs under one lock acquisition; unknown IDs
	// (including 0) decode to nil.
	Terms(ids []store.ID) []rdf.Term
	// ForEachID streams ID-space matches (0 = wildcard) in the same
	// sequence ForEach decodes, under one consistent read view.
	ForEachID(s, p, o store.ID, fn func(store.IDTriple) bool)
	// ScanIDs materializes the matches through the permutation sorted on
	// lead (see store.ScanIDs); ok=false means no permutation serves that
	// lead order.
	ScanIDs(s, p, o store.ID, lead store.Position) (store.IDRun, bool)
	// EstimateCountIDs is EstimateCount for an encoded mask; the engine
	// compares it against the binding count to choose merge vs. probe.
	EstimateCountIDs(s, p, o store.ID) int
}

// compile-time checks: the concrete store is a Source and an IDSource.
var (
	_ Source   = (*store.Store)(nil)
	_ IDSource = (*store.Store)(nil)
)
