package sparql

import (
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Source is the triple-matching surface the engine evaluates against.
// *store.Store satisfies it; tests and instrumentation wrap one to observe
// or throttle scans (the streaming endpoint's first-row-before-completion
// test runs against a deliberately slow wrapper). Implementations must be
// safe for concurrent ForEach calls — the parallel BGP executor probes
// disjoint binding chunks from multiple goroutines.
type Source interface {
	// ForEach streams every triple matching p to fn in the store's scan
	// order until fn returns false, under one consistent read view; fn
	// must not scan the source again (see store.ForEach's locking
	// contract).
	ForEach(p store.Pattern, fn func(rdf.Triple) bool)
	// ForEachPage streams up to max matching triples starting at scan
	// position pos, returning the resume position and whether the scan is
	// exhausted. The read view is held per page only, so the streaming
	// driver can evaluate joins and write to clients between pages
	// without blocking the store's writers (see store.ForEachPage).
	ForEachPage(p store.Pattern, pos, max int, fn func(rdf.Triple) bool) (next int, done bool)
	// LayoutEpoch reports the source's index-layout epoch; a change
	// between two pages of one scan means positional cursors were
	// invalidated (see store.LayoutEpoch) and the scan must restart or
	// abort.
	LayoutEpoch() uint64
	// EstimateCount returns the index-range cardinality estimate for the
	// bound positions of p (join planning).
	EstimateCount(p store.Pattern) int
	// NumTerms returns the dictionary size (join planning fallback).
	NumTerms() int
	// Cardinalities returns the per-predicate distinct-value table (join
	// planning).
	Cardinalities() map[rdf.IRI]store.PredCardinality
}

// compile-time check: the concrete store is a Source.
var _ Source = (*store.Store)(nil)
