package sparql

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

const testData = `
@prefix ex: <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice a foaf:Person ;
    foaf:name "Alice" ;
    foaf:age 30 ;
    foaf:knows ex:bob, ex:carol .

ex:bob a foaf:Person ;
    foaf:name "Bob" ;
    foaf:age 25 ;
    foaf:knows ex:carol .

ex:carol a foaf:Person ;
    foaf:name "Carol" ;
    foaf:age 35 .

ex:athens a ex:City ;
    ex:label "Athens"@en ;
    ex:population 664046 .

ex:bordeaux a ex:City ;
    ex:label "Bordeaux"@fr ;
    ex:population 252040 .
`

func testStore(t *testing.T) *store.Store {
	t.Helper()
	triples, err := turtle.ParseString(testData)
	if err != nil {
		t.Fatalf("parse test data: %v", err)
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return st
}

func exec(t *testing.T, st *store.Store, q string) *Results {
	t.Helper()
	res, err := Exec(st, q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p a foaf:Person ; foaf:name ?name . }`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r["name"].(rdf.Literal).Lexical] = true
	}
	for _, n := range []string{"Alice", "Bob", "Carol"} {
		if !names[n] {
			t.Errorf("missing %s in %v", n, names)
		}
	}
}

func TestSelectStar(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT * WHERE { ?p foaf:knows ?q }`)
	if len(res.Vars) != 2 || res.Vars[0] != "p" || res.Vars[1] != "q" {
		t.Errorf("Vars = %v", res.Vars)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	st := testStore(t)
	// Friends of friends of alice.
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?fof WHERE { ex:alice foaf:knows ?f . ?f foaf:knows ?fof . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0]["fof"] != rdf.IRI("http://example.org/carol") {
		t.Errorf("fof = %v", res.Rows[0]["fof"])
	}
}

func TestFilterNumericComparison(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE { ?p foaf:age ?a . FILTER(?a > 28) }`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (alice 30, carol 35)", len(res.Rows))
	}
}

func TestFilterLogicalOps(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE { ?p foaf:age ?a . FILTER(?a >= 25 && ?a < 31 || ?a = 35) }`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestFilterRegexAndStr(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE { ?p foaf:name ?n . FILTER REGEX(?n, "^A") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	res = exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE { ?p foaf:name ?n . FILTER REGEX(?n, "^a", "i") }`)
	if len(res.Rows) != 1 {
		t.Errorf("case-insensitive regex rows = %d, want 1", len(res.Rows))
	}
}

func TestFilterStringFunctions(t *testing.T) {
	st := testStore(t)
	cases := []struct {
		filter string
		want   int
	}{
		{`STRSTARTS(?n, "B")`, 1},
		{`STRENDS(?n, "ob")`, 1},
		{`CONTAINS(?n, "aro")`, 1},
		{`STRLEN(?n) = 5`, 2}, // Alice, Carol
		{`UCASE(?n) = "BOB"`, 1},
		{`LCASE(?n) = "alice"`, 1},
	}
	for _, c := range cases {
		q := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE { ?p foaf:name ?n . FILTER(%s) }`, c.filter)
		res := exec(t, st, q)
		if len(res.Rows) != c.want {
			t.Errorf("filter %s: rows = %d, want %d", c.filter, len(res.Rows), c.want)
		}
	}
}

func TestFilterLangAndDatatype(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?c WHERE { ?c ex:label ?l . FILTER(LANG(?l) = "en") }`)
	if len(res.Rows) != 1 || res.Rows[0]["c"] != rdf.IRI("http://example.org/athens") {
		t.Errorf("lang filter rows = %v", res.Rows)
	}
	res = exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?c WHERE { ?c ex:population ?p . FILTER(DATATYPE(?p) = xsd:integer) }`)
	if len(res.Rows) != 2 {
		t.Errorf("datatype filter rows = %d, want 2", len(res.Rows))
	}
}

func TestFilterTermKindTests(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:athens ?p ?o . FILTER(ISLITERAL(?o)) }`)
	if len(res.Rows) != 2 {
		t.Errorf("ISLITERAL rows = %d, want 2", len(res.Rows))
	}
	res = exec(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:athens ?p ?o . FILTER(ISIRI(?o)) }`)
	if len(res.Rows) != 1 {
		t.Errorf("ISIRI rows = %d, want 1", len(res.Rows))
	}
}

func TestOptional(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?q WHERE { ?p a foaf:Person . OPTIONAL { ?p foaf:knows ?q } }`)
	// alice knows 2, bob knows 1, carol knows none (but appears once).
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	carolRows := 0
	for _, r := range res.Rows {
		if r["p"] == rdf.IRI("http://example.org/carol") {
			carolRows++
			if _, bound := r["q"]; bound {
				t.Error("carol's ?q should be unbound")
			}
		}
	}
	if carolRows != 1 {
		t.Errorf("carol rows = %d, want 1", carolRows)
	}
}

func TestOptionalWithBound(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE {
  ?p a foaf:Person .
  OPTIONAL { ?p foaf:knows ?q }
  FILTER(!BOUND(?q))
}`)
	if len(res.Rows) != 1 || res.Rows[0]["p"] != rdf.IRI("http://example.org/carol") {
		t.Errorf("negation-by-failure rows = %v", res.Rows)
	}
}

func TestUnion(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { { ?x a foaf:Person } UNION { ?x a ex:City } }`)
	if len(res.Rows) != 5 {
		t.Errorf("union rows = %d, want 5", len(res.Rows))
	}
}

func TestBind(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?next WHERE { ?p foaf:age ?a . BIND(?a + 1 AS ?next) }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		v, _ := r["next"].(rdf.Literal).Int()
		if v != 26 && v != 31 && v != 36 {
			t.Errorf("next = %v", r["next"])
		}
	}
}

func TestValues(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?name WHERE {
  VALUES ?p { ex:alice ex:bob }
  ?p foaf:name ?name .
}`)
	if len(res.Rows) != 2 {
		t.Errorf("VALUES rows = %d, want 2", len(res.Rows))
	}
}

func TestValuesMultiColumn(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?a ?b WHERE {
  VALUES (?a ?b) { (ex:alice ex:bob) (ex:bob UNDEF) }
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p foaf:name ?name ; foaf:age ?a } ORDER BY DESC(?a)`)
	want := []string{"Carol", "Alice", "Bob"}
	for i, w := range want {
		if got := res.Rows[i]["name"].(rdf.Literal).Lexical; got != w {
			t.Errorf("row %d = %q, want %q", i, got, w)
		}
	}
	res = exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE { ?p foaf:name ?name ; foaf:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1`)
	if len(res.Rows) != 1 || res.Rows[0]["name"].(rdf.Literal).Lexical != "Alice" {
		t.Errorf("limit/offset rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?type WHERE { ?s a ?type }`)
	if len(res.Rows) != 2 {
		t.Errorf("distinct types = %d, want 2", len(res.Rows))
	}
}

func TestAsk(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ex:alice foaf:knows ex:bob }`)
	if !res.Ask {
		t.Error("ASK = false, want true")
	}
	res = exec(t, st, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ex:bob foaf:knows ex:alice }`)
	if res.Ask {
		t.Error("ASK = true, want false")
	}
}

func TestAggregatesCountSumAvg(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (COUNT(*) AS ?n) (SUM(?a) AS ?total) (AVG(?a) AS ?mean) WHERE { ?p foaf:age ?a }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if n, _ := r["n"].(rdf.Literal).Int(); n != 3 {
		t.Errorf("count = %v", r["n"])
	}
	if s, _ := r["total"].(rdf.Literal).Int(); s != 90 {
		t.Errorf("sum = %v", r["total"])
	}
	if m, _ := r["mean"].(rdf.Literal).Float(); m != 30 {
		t.Errorf("avg = %v", r["mean"])
	}
}

func TestAggregatesMinMaxSample(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SAMPLE(?a) AS ?any) WHERE { ?p foaf:age ?a }`)
	r := res.Rows[0]
	if lo, _ := r["lo"].(rdf.Literal).Int(); lo != 25 {
		t.Errorf("min = %v", r["lo"])
	}
	if hi, _ := r["hi"].(rdf.Literal).Int(); hi != 35 {
		t.Errorf("max = %v", r["hi"])
	}
	if _, ok := r["any"]; !ok {
		t.Error("sample unbound")
	}
}

func TestGroupByWithHaving(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p (COUNT(?q) AS ?n) WHERE { ?p foaf:knows ?q }
GROUP BY ?p
HAVING (COUNT(?q) > 1)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only alice knows >1)", len(res.Rows))
	}
	if res.Rows[0]["p"] != rdf.IRI("http://example.org/alice") {
		t.Errorf("p = %v", res.Rows[0]["p"])
	}
	if n, _ := res.Rows[0]["n"].(rdf.Literal).Int(); n != 2 {
		t.Errorf("n = %v", res.Rows[0]["n"])
	}
}

func TestGroupByOrderByAggregate(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p (COUNT(?q) AS ?n) WHERE { ?p foaf:knows ?q }
GROUP BY ?p
ORDER BY DESC(COUNT(?q))`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0]["p"] != rdf.IRI("http://example.org/alice") {
		t.Errorf("first by count = %v", res.Rows[0]["p"])
	}
}

func TestCountDistinct(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (COUNT(DISTINCT ?q) AS ?n) WHERE { ?p foaf:knows ?q }`)
	if n, _ := res.Rows[0]["n"].(rdf.Literal).Int(); n != 2 {
		t.Errorf("distinct objects = %v, want 2 (bob, carol)", res.Rows[0]["n"])
	}
}

func TestGroupConcat(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (GROUP_CONCAT(?n ; SEPARATOR = ",") AS ?names)
WHERE { ?p foaf:name ?n } ORDER BY ?p`)
	got := res.Rows[0]["names"].(rdf.Literal).Lexical
	// Order inside the group follows solution order; just check membership.
	for _, want := range []string{"Alice", "Bob", "Carol"} {
		if !containsStr(got, want) {
			t.Errorf("GROUP_CONCAT = %q missing %s", got, want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})())
}

func TestCountAllEmptyGroup(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?s ex:nonexistent ?o }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if n, _ := res.Rows[0]["n"].(rdf.Literal).Int(); n != 0 {
		t.Errorf("count = %v, want 0", res.Rows[0]["n"])
	}
}

func TestBindIfCoalesce(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?cls WHERE {
  ?p foaf:age ?a .
  BIND(IF(?a >= 30, "senior", "junior") AS ?cls)
}`)
	seniors := 0
	for _, r := range res.Rows {
		if r["cls"].(rdf.Literal).Lexical == "senior" {
			seniors++
		}
	}
	if seniors != 2 {
		t.Errorf("seniors = %d, want 2", seniors)
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	st := testStore(t)
	// Add a self-loop to test repeated-variable unification.
	st.Add(rdf.T(rdf.IRI("http://example.org/dave"), "http://xmlns.com/foaf/0.1/knows", rdf.IRI("http://example.org/dave")))
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows ?x }`)
	if len(res.Rows) != 1 || res.Rows[0]["x"] != rdf.IRI("http://example.org/dave") {
		t.Errorf("self-loop rows = %v", res.Rows)
	}
}

func TestSubGroupAndNestedFilters(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p WHERE {
  { ?p foaf:age ?a . FILTER(?a > 26) }
  ?p foaf:name ?n .
}`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE { ?x }`,
		`SELECT ?x WHERE { ?x ?p }`,
		`FOO ?x WHERE { ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o`,
		`SELECT ?x WHERE { ?x nope:broken ?o }`,
		`SELECT (COUNT(?x) AS) WHERE { ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o } LIMIT nope`,
		`SELECT ?x WHERE { ?x ?p ?o } GROUP BY`,
		`SELECT ?x WHERE { FILTER }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestBindErrorLeavesUnbound(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?p ?bad WHERE { ?p foaf:name ?n . BIND(?n + 1 AS ?bad) }`)
	for _, r := range res.Rows {
		if _, bound := r["bad"]; bound {
			t.Error("?bad should be unbound after type error")
		}
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestArithmetics(t *testing.T) {
	st := testStore(t)
	res := exec(t, st, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT (AVG(?x) AS ?v) WHERE { ?p foaf:age ?a . BIND(?a * 2 - 10 AS ?x) }`)
	if v, _ := res.Rows[0]["v"].(rdf.Literal).Float(); v != 50 {
		t.Errorf("avg(2a-10) = %v, want 50", res.Rows[0]["v"])
	}
}

func TestLargerJoinOrdering(t *testing.T) {
	// Star join over a generated dataset: verifies reordering correctness,
	// not just performance.
	st := store.New()
	for i := 0; i < 200; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/item%d", i))
		st.Add(rdf.T(s, "http://e/type", rdf.IRI("http://e/Item")))
		st.Add(rdf.T(s, "http://e/val", rdf.NewInteger(int64(i))))
		if i%10 == 0 {
			st.Add(rdf.T(s, "http://e/special", rdf.NewBoolean(true)))
		}
	}
	res, err := Exec(st, `
SELECT ?s ?v WHERE {
  ?s <http://e/type> <http://e/Item> .
  ?s <http://e/special> true .
  ?s <http://e/val> ?v .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d, want 20", len(res.Rows))
	}
}

func TestNumericLiteralForms(t *testing.T) {
	st := store.New()
	st.Add(rdf.T(rdf.IRI("http://e/x"), "http://e/v", rdf.NewDecimal(2.5)))
	res, err := Exec(st, `SELECT ?s WHERE { ?s <http://e/v> ?v . FILTER(?v = 2.5) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("decimal compare rows = %d", len(res.Rows))
	}
}
