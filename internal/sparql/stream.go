package sparql

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
)

// errScanShifted reports that the store compacted its indexes between two
// pages of a streamed scan, invalidating the positional cursor. The
// materialized fast paths react by restarting (and ultimately falling back
// to the snapshot-consistent materializing pipeline); an incremental
// stream that has already delivered rows surfaces it to the consumer.
var errScanShifted = errors.New("sparql: store layout changed during streamed scan")

// Streaming query evaluation. The materializing pipeline in query.go
// computes every solution, sorts and deduplicates the full set, and only
// then slices LIMIT/OFFSET — so an exploration query asking for the first
// screenful pays the full scan. The paths in this file make top-k the fast
// path instead:
//
//   - streamDirect: plain SELECT ... LIMIT k (+OFFSET) without ORDER BY,
//     DISTINCT, or grouping stops scanning after offset+k solutions, and
//     ASK stops at the first. Work scales with k, not with dataset size.
//   - streamTopK: ORDER BY ... LIMIT k keeps a bounded heap of the
//     offset+k best solutions while scanning, replacing the full
//     sort-then-slice: O(k) memory and O(n log k) comparisons.
//
// Both paths produce byte-identical rows in identical order to the
// materializing pipeline (Options.NoStream forces the latter; differential
// tests compare the two). Queries whose modifiers need the whole solution
// set — DISTINCT, GROUP BY, aggregates — and shapes whose evaluation is not
// row-local (UNION, SERVICE) stay on the materializing path.

// streamMode selects the evaluation strategy for a parsed query.
type streamMode int

const (
	// streamNone: the query must materialize every solution first.
	streamNone streamMode = iota
	// streamDirect: complete solutions can be delivered — and evaluation
	// stopped — as they are found.
	streamDirect
	// streamTopK: ORDER BY needs every solution, but LIMIT bounds how many
	// survive; a bounded heap replaces the full sort.
	streamTopK
)

// planStream classifies a query. streamDirect/streamTopK are only returned
// when the streamed rows are provably identical, in order, to the
// materializing pipeline's output, AND the driver can actually suspend a
// scan — a top-level triple pattern (after unwrapping redundant nesting).
// Without one, streaming would be a full evaluation wearing a streaming
// hat, so such queries honestly report the materializing path.
func planStream(q *Query) streamMode {
	if q.Where == nil {
		return streamNone
	}
	g := unwrapGroup(q.Where)
	if !streamableElems(g.Elems) || !streamablePrefix(g.Elems) {
		return streamNone
	}
	if q.Form == FormAsk {
		return streamDirect
	}
	if q.Distinct || len(q.GroupBy) > 0 || len(q.Having) > 0 || projectionHasAggregates(q) {
		return streamNone
	}
	if len(q.OrderBy) == 0 {
		return streamDirect
	}
	if q.Limit >= 0 {
		return streamTopK
	}
	return streamNone
}

// unwrapGroup peels redundant nesting: a group consisting solely of one
// subgroup evaluates identically to that subgroup with both levels'
// filters applied (filters are row-local and both apply after the
// patterns), so the streaming driver sees through the wrapper to the
// scannable pattern inside — `{ { ?s ?p ?o } } LIMIT k` short-circuits
// like its un-nested form.
func unwrapGroup(g *Group) *Group {
	for len(g.Elems) == 1 {
		sub, ok := g.Elems[0].(SubGroup)
		if !ok {
			break
		}
		inner := sub.Inner
		if len(g.Filters) > 0 {
			merged := append(append([]Expr{}, inner.Filters...), g.Filters...)
			inner = &Group{Elems: inner.Elems, Filters: merged}
		}
		g = inner
	}
	return g
}

// streamablePrefix checks that the driver has a scan to suspend and that
// everything scheduled before it is a genuinely tiny seed (BIND/VALUES): a
// SubGroup or OPTIONAL ahead of the first pattern would be fully evaluated
// — an unbounded scan of its own — before the first row could flow, which
// would betray the work-scales-with-k promise while still reporting
// incremental delivery. (Reordering never moves patterns across non-pattern
// elements, so the pre-reorder prefix seen here is the one the driver gets.)
func streamablePrefix(elems []GroupElem) bool {
	for _, el := range elems {
		switch el.(type) {
		case TriplePattern:
			return true
		case Bind, Values:
		default:
			return false
		}
	}
	return false
}

// addBudget returns offset+limit as an early-termination row budget, or -1
// (no budget: rely on emit-side enforcement) when the sum overflows.
func addBudget(offset, limit int) int {
	if limit > math.MaxInt-offset {
		return -1
	}
	return offset + limit
}

// streamableElems reports whether an element sequence is row-local: the
// output attributable to one input binding is contiguous, in input order,
// and independent of which other bindings share its evaluation batch. Only
// then does batched tail evaluation preserve the materializing row order.
// UNION is not row-local (it emits all left-branch rows before any
// right-branch row); SERVICE is remote and batch-shaped. Both are fine
// inside OPTIONAL's inner group, which is evaluated per binding anyway —
// except SERVICE, which is excluded everywhere so a budgeted scan never
// controls how often a remote endpoint is called.
func streamableElems(elems []GroupElem) bool {
	for _, el := range elems {
		switch el := el.(type) {
		case TriplePattern, Bind, Values:
		case Optional:
			if HasService(el.Inner) {
				return false
			}
		case SubGroup:
			if !streamableElems(el.Inner.Elems) {
				return false
			}
		default: // Union, Service, future elements
			return false
		}
	}
	return true
}

// Batch sizing for the streaming driver: the first page is tiny so the
// first rows reach the consumer after a handful of scan matches
// (time-to-first-row is the whole point), later pages double so long scans
// amortize per-page lock round-trips and grow past parallelThreshold,
// handing the tail pipeline to the worker pool.
const (
	streamBatchInit = 4
	streamBatchMax  = 8192
)

// streamSolutions evaluates g, delivering every complete solution (after
// the group's filters) to emit in exactly the order the materializing
// pipeline produces, until emit returns false. budget >= 0 is the caller's
// expected row need; it rides into the capped parallel executor as a probe
// bound but emit alone decides when delivery stops. budget < 0 streams the
// full solution set.
//
// The driver pages the suspended scan: each ForEachPage call does nothing
// under the store's read lock but unify-and-collect, and the page's rows
// are then joined through the tail pipeline and handed to emit with the
// lock released — a nested scan inside the outer one would deadlock behind
// a queued writer, and a slow network consumer must not stall the store's
// writers. The flip side is isolation: a write landing between two pages
// is visible to the remainder of the scan (the materializing path keeps
// its one-snapshot-per-scan semantics).
func (e *engine) streamSolutions(g *Group, budget int, emit func(Binding) bool) error {
	g = unwrapGroup(g)
	elems := g.Elems
	if !e.noReorder {
		elems = e.reorderTriplePatterns(elems)
		e.tracePlan(elems)
	}
	first := -1
	for i, el := range elems {
		if _, ok := el.(TriplePattern); ok {
			first = i
			break
		}
	}
	if first == -1 {
		// Defensive fallback — planStream requires a top-level pattern, so
		// driven paths never land here: evaluate outright and replay.
		sols, err := e.evalElems(elems, g.Filters, []Binding{{}})
		if err != nil {
			return err
		}
		for _, s := range sols {
			if !emit(s) {
				return nil
			}
		}
		return nil
	}

	// The prefix before the first pattern (BIND/VALUES seeds only, per
	// streamablePrefix) is tiny; the scan of the first pattern over its
	// output is the loop we suspend.
	input, err := e.evalElems(elems[:first], nil, []Binding{{}})
	if err != nil {
		return err
	}
	tp := elems[first].(TriplePattern)
	rest := elems[first+1:]
	// With no tail and no filters every scan match is a final solution.
	direct := len(rest) == 0 && len(g.Filters) == 0

	// Driver accounting: pages pulled and scan matches produced, flushed
	// once on the way out (every return path) to metrics and — as one
	// "paged-scan" pattern span — to the trace.
	var pages, driverRows int
	var driverStart time.Time
	if e.trace != nil {
		driverStart = time.Now()
	}
	defer func() {
		if e.met != nil {
			e.met.PagesScanned.Add(uint64(pages))
			e.met.RowsOut.Add(uint64(driverRows))
		}
		if e.trace != nil {
			sp := e.trace.Add(e.exec, "pattern")
			sp.Set(patternString(tp), "paged-scan", len(input), driverRows, driverStart)
			sp.SetPages(pages)
		}
	}()

	emitted := 0
	deliver := func(rows []Binding) bool {
		for _, r := range rows {
			emitted++
			if !emit(r) {
				return false
			}
		}
		return true
	}

	epoch := e.st.LayoutEpoch()
	batchCap := streamBatchInit
	var batch []Binding
	for _, b := range input {
		pat, vars := concretize(tp, b)
		pos := 0
		for {
			if err := e.cancelled(); err != nil {
				return err
			}
			// Page size: the geometrically growing batch, clamped in
			// direct mode to the rows still owed (each match there is a
			// final solution, so scanning further is pure waste).
			max := batchCap
			if direct && budget >= 0 {
				rem := remainingBudget(budget, emitted)
				if rem == 0 {
					return nil
				}
				if rem < max {
					max = rem
				}
			}
			batch = batch[:0]
			next, done := e.st.ForEachPage(pat, pos, max, func(t rdf.Triple) bool {
				if nb, ok := unify(b, vars, t); ok {
					batch = append(batch, nb)
				}
				return true
			})
			pos = next
			pages++
			driverRows += len(batch)
			// A compaction between pages reshuffles positions: the page
			// just read may duplicate or skip triples, so discard it and
			// let the caller restart or abort.
			if e.st.LayoutEpoch() != epoch {
				return errScanShifted
			}
			// Lock released: join and deliver this page's matches.
			if direct {
				if !deliver(batch) {
					return nil
				}
			} else if len(batch) > 0 {
				rows, err := e.flushTail(rest, g.Filters, batch, remainingBudget(budget, emitted))
				if err != nil {
					return err
				}
				if !deliver(rows) {
					return nil
				}
			}
			if done {
				break
			}
			if batchCap < streamBatchMax {
				batchCap *= 2
			}
		}
	}
	return nil
}

func remainingBudget(budget, emitted int) int {
	if budget < 0 {
		return -1
	}
	if r := budget - emitted; r > 0 {
		return r
	}
	return 0
}

// flushTail evaluates the planned tail pipeline over one batch of scan
// matches. When the tail is a single final triple pattern its output rows
// are final solutions, so the row budget rides into the capped parallel
// executor and the join probes stop early.
func (e *engine) flushTail(rest []GroupElem, filters []Expr, batch []Binding, cap int) ([]Binding, error) {
	if cap >= 0 && len(rest) == 1 && len(filters) == 0 {
		if tp, ok := rest[0].(TriplePattern); ok {
			return e.evalTriplePatternCap(tp, batch, cap)
		}
	}
	return e.evalElems(rest, filters, batch)
}

// topkEntry is one candidate in the bounded ORDER BY heap: the solution,
// its precomputed sort-key terms, and its arrival sequence (the stable-sort
// tiebreaker).
type topkEntry struct {
	sol  Binding
	keys []rdf.Term
	seq  int
}

// orderCmp orders entries exactly as the materializing path's stable sort
// does: key by key (unbound before bound per rdf.Compare, DESC negated),
// arrival order breaking ties. It never returns 0 — seq is unique.
func orderCmp(a, b topkEntry, keys []OrderKey) int {
	for k := range keys {
		c := rdf.Compare(a.keys[k], b.keys[k])
		if keys[k].Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return a.seq - b.seq
}

// topkHeap is a max-heap under orderCmp: the root is the worst survivor,
// the one a better-sorting newcomer evicts.
type topkHeap struct {
	entries []topkEntry
	keys    []OrderKey
}

func (h *topkHeap) Len() int           { return len(h.entries) }
func (h *topkHeap) Less(i, j int) bool { return orderCmp(h.entries[i], h.entries[j], h.keys) > 0 }
func (h *topkHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *topkHeap) Push(x any)         { h.entries = append(h.entries, x.(topkEntry)) }
func (h *topkHeap) Pop() any           { panic("topkHeap: never popped") }

// streamTopK streams the full solution set through a k-bounded heap and
// returns, in arrival order, exactly the k solutions the materializing
// path's stable sort would rank first. The shared modifier tail then
// re-sorts this reduced set, so the final rows are identical — but memory
// is O(k) and sorting costs O(n log k) instead of O(n log n).
func (e *engine) streamTopK(q *Query, k int) ([]Binding, error) {
	h := &topkHeap{keys: q.OrderBy, entries: make([]topkEntry, 0, min(k, 1024))}
	seq := 0
	err := e.streamSolutions(q.Where, -1, func(s Binding) bool {
		keys := make([]rdf.Term, len(q.OrderBy))
		for i, key := range q.OrderBy {
			if t, err := evalExpr(key.Expr, s); err == nil {
				keys[i] = t
			}
		}
		ent := topkEntry{sol: s, keys: keys, seq: seq}
		seq++
		if h.Len() < k {
			heap.Push(h, ent)
		} else if orderCmp(ent, h.entries[0], q.OrderBy) < 0 {
			h.entries[0] = ent
			heap.Fix(h, 0)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.entries[i].seq < h.entries[j].seq })
	sols := make([]Binding, len(h.entries))
	for i, ent := range h.entries {
		sols[i] = ent.sol
	}
	return sols, nil
}

// runDirect streams the OFFSET/LIMIT-windowed projected rows of a
// streamDirect-planned SELECT to emit, in materializing order, stopping
// the scan as soon as the window is filled (or emit declines). The window
// is enforced on the emit side; the scan budget is a hint the capped
// parallel executor also honors. Both evaluation entry points — the
// materialized fast path and the incremental Stream.Run — are this one
// loop, so modifier semantics cannot diverge between them.
func (e *engine) runDirect(q *Query, vars []string, emit func(Binding) bool) error {
	if q.Limit == 0 {
		return nil
	}
	budget := -1
	if q.Limit > 0 {
		budget = addBudget(q.Offset, q.Limit)
		if budget >= 0 && e.met != nil {
			e.met.PushdownHits.Inc()
		}
	}
	skipped, emitted := 0, 0
	return e.streamSolutions(q.Where, budget, func(sol Binding) bool {
		if skipped < q.Offset {
			skipped++
			return true
		}
		emitted++
		if !emit(projectSolution(q, vars, sol, nil)) {
			return false
		}
		return q.Limit < 0 || emitted < q.Limit
	})
}

// scanRestartAttempts bounds how often a materialized fast path restarts a
// scan the store compacted under; past it, the snapshot-consistent
// materializing pipeline takes over (correct at any write rate, just not
// early-terminating).
const scanRestartAttempts = 3

// evalStreamFast is the engine's early-termination entry: it handles the
// query shapes whose solution modifiers let evaluation stop before the full
// scan (ok=true), and declines (ok=false) when the query must materialize —
// including when concurrent compaction keeps shifting the paged scan out
// from under it. Results are always exactly what the materializing
// pipeline would return.
func (e *engine) evalStreamFast(q *Query) (res *Results, ok bool, err error) {
	switch planStream(q) {
	case streamDirect:
		if q.Form == FormAsk {
			for attempt := 0; attempt < scanRestartAttempts; attempt++ {
				found := false
				err := e.streamSolutions(q.Where, 1, func(Binding) bool {
					found = true
					return false
				})
				if errors.Is(err, errScanShifted) {
					continue
				}
				if err != nil {
					return nil, true, err
				}
				return &Results{Form: FormAsk, Ask: found}, true, nil
			}
			return nil, false, nil
		}
		if q.Limit < 0 {
			// Without a LIMIT the whole set is needed anyway; the
			// materializing pipeline is no slower and shares more code.
			return nil, false, nil
		}
		vars := streamVars(q)
		for attempt := 0; attempt < scanRestartAttempts; attempt++ {
			var rows []Binding
			err := e.runDirect(q, vars, func(r Binding) bool {
				rows = append(rows, r)
				return true
			})
			if errors.Is(err, errScanShifted) {
				continue
			}
			if err != nil {
				return nil, true, err
			}
			return &Results{Form: FormSelect, Vars: vars, Rows: rows}, true, nil
		}
		return nil, false, nil

	case streamTopK:
		k := addBudget(q.Offset, q.Limit)
		if k < 0 {
			// offset+limit overflows: no meaningful heap bound exists, and
			// a window that large is a full materialization anyway.
			return nil, false, nil
		}
		vars := streamVars(q)
		for attempt := 0; attempt < scanRestartAttempts; attempt++ {
			var sols []Binding
			if k > 0 {
				var err error
				sols, err = e.streamTopK(q, k)
				if errors.Is(err, errScanShifted) {
					continue
				}
				if err != nil {
					return nil, true, err
				}
			}
			hidden := hiddenOrdNames(len(q.OrderBy))
			rows := make([]Binding, 0, len(sols))
			for _, s := range sols {
				rows = append(rows, projectSolution(q, vars, s, hidden))
			}
			sortRows(rows, q.OrderBy, hidden)
			stripHidden(rows, hidden)
			return &Results{Form: FormSelect, Vars: vars, Rows: sliceOffsetLimit(rows, q.Offset, q.Limit)}, true, nil
		}
		return nil, false, nil
	}
	return nil, false, nil
}

// streamVars resolves the projected column names without evaluating: the
// explicit projection list in order, or for SELECT * every variable the
// pattern can bind, sorted. Both evaluation paths use this, so the header
// never depends on which rows a LIMIT kept. _-prefixed names are excluded
// to hide the parser's _anonN bnode variables — which also hides, as a
// documented side effect, user variables starting with '_' under SELECT *
// (explicit projection always works).
func streamVars(q *Query) []string {
	if !q.Star {
		vars := make([]string, 0, len(q.Projection))
		for _, item := range q.Projection {
			vars = append(vars, item.Var)
		}
		return vars
	}
	set := map[string]bool{}
	collectBindableVars(q.Where, set)
	out := make([]string, 0, len(set))
	for v := range set {
		if len(v) > 0 && v[0] != '_' {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Stream is a prepared streaming query evaluation: parsing and planning
// happen at construction, so the column header is known before the first
// row, and Run delivers rows through a callback as they are found. The
// HTTP /sparql/stream endpoint and Dataset.QueryStream are built on it.
type Stream struct {
	e    *engine
	q    *Query
	opt  Options
	mode streamMode
	vars []string
}

// PrepareStream parses and plans query for streaming delivery against src.
// Parse failures match ErrParse.
func PrepareStream(ctx context.Context, src Source, query string, opt Options) (*Stream, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return PrepareStreamQuery(ctx, src, q, opt), nil
}

// PrepareStreamQuery is PrepareStream over an already-parsed query.
func PrepareStreamQuery(ctx context.Context, src Source, q *Query, opt Options) *Stream {
	mode := planStream(q)
	if opt.NoStream {
		mode = streamNone
	}
	s := &Stream{e: newEngine(ctx, src, opt), q: q, opt: opt, mode: mode}
	if q.Form == FormSelect {
		s.vars = streamVars(q)
	}
	return s
}

// Vars returns the projected column names (nil for ASK).
func (s *Stream) Vars() []string { return s.vars }

// Form returns the query form (FormSelect streams rows via Run, FormAsk
// answers via Ask).
func (s *Stream) Form() QueryForm { return s.q.Form }

// Incremental reports whether Run delivers rows while evaluation is still
// in progress — and, when the query carries a LIMIT, stops scanning as soon
// as enough rows are out. False means the query's shape forces full
// evaluation first (ORDER BY, DISTINCT, grouping, UNION or SERVICE
// patterns); rows still arrive through the same callback, just only after
// the result set is complete.
func (s *Stream) Incremental() bool { return s.mode == streamDirect && s.q.Form == FormSelect }

// Run evaluates a SELECT stream, calling emit for every result row in
// order — the same rows the materializing pipeline returns — until emit
// returns false. Errors match ErrEval.
func (s *Stream) Run(emit func(Binding) bool) error {
	if s.q.Form != FormSelect {
		return wrapEval(fmt.Errorf("sparql: Run on an ASK query; use Ask"))
	}
	switch s.mode {
	case streamDirect:
		if s.e.met != nil {
			s.e.met.QueriesStreamed.Inc()
		}
		for attempt := 0; attempt < scanRestartAttempts; attempt++ {
			delivered := false
			err := s.e.runDirect(s.q, s.vars, func(r Binding) bool {
				delivered = true
				return emit(r)
			})
			if errors.Is(err, errScanShifted) {
				if delivered {
					// Rows already reached the consumer; a restart would
					// duplicate them. Surface the conflict instead.
					return wrapEval(fmt.Errorf("%w; re-run the query", err))
				}
				continue // nothing delivered yet: restart transparently
			}
			return wrapEval(err)
		}
		// Compaction churn with nothing delivered: fall through to the
		// materialized replay below, which is snapshot-consistent.
		fallthrough
	default:
		// Materializing modes (top-k included) share the Results pipeline
		// and replay the finished rows.
		res, err := evalWithEngine(s.e, s.q, s.opt)
		if err != nil {
			return wrapEval(err)
		}
		for _, row := range res.Rows {
			if !emit(row) {
				return nil
			}
		}
		return nil
	}
}

// Ask answers an ASK stream, stopping at the first matching solution when
// the pattern qualifies for streaming. Errors match ErrEval.
func (s *Stream) Ask() (bool, error) {
	if s.q.Form != FormAsk {
		return false, wrapEval(fmt.Errorf("sparql: Ask on a SELECT query; use Run"))
	}
	res, err := evalWithEngine(s.e, s.q, s.opt)
	if err != nil {
		return false, wrapEval(err)
	}
	return res.Ask, nil
}
