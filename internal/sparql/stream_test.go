package sparql

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// countingSource wraps a store and counts every triple the engine's scans
// visit — on both the snapshot and the paged scan paths — the observable
// that proves LIMIT pushdown actually stops scanning instead of just
// truncating a full result.
type countingSource struct {
	*store.Store
	visited atomic.Int64
}

func (c *countingSource) ForEach(p store.Pattern, fn func(rdf.Triple) bool) {
	c.Store.ForEach(p, func(t rdf.Triple) bool {
		c.visited.Add(1)
		return fn(t)
	})
}

func (c *countingSource) ForEachPage(p store.Pattern, pos, max int, fn func(rdf.Triple) bool) (int, bool) {
	return c.Store.ForEachPage(p, pos, max, func(t rdf.Triple) bool {
		c.visited.Add(1)
		return fn(t)
	})
}

// The embedded store promotes the IDSource methods, so the dictionary-ID
// executor's scans must be counted too or they would bypass the wrapper.
func (c *countingSource) ForEachID(s, p, o store.ID, fn func(store.IDTriple) bool) {
	c.Store.ForEachID(s, p, o, func(t store.IDTriple) bool {
		c.visited.Add(1)
		return fn(t)
	})
}

func (c *countingSource) ScanIDs(s, p, o store.ID, lead store.Position) (store.IDRun, bool) {
	run, ok := c.Store.ScanIDs(s, p, o, lead)
	if ok {
		c.visited.Add(int64(len(run.Sorted) + len(run.Tail)))
	}
	return run, ok
}

// streamStore builds a dataset big enough that full evaluation is clearly
// distinguishable from an early-terminated scan: n entities, each with a
// value triple and a link triple.
func streamStore(t testing.TB, n int) *store.Store {
	t.Helper()
	triples := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		e := rdf.IRI(fmt.Sprintf("http://s/e%d", i))
		triples = append(triples,
			rdf.Triple{S: e, P: "http://s/value", O: rdf.NewInteger(int64(i % 1000))},
			rdf.Triple{S: e, P: "http://s/link", O: rdf.IRI(fmt.Sprintf("http://s/e%d", (i+1)%n))},
		)
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// execOpts evaluates and fails the test on error.
func execOpts(t *testing.T, src Source, q string, opt Options) *Results {
	t.Helper()
	res, err := ExecOpts(src, q, opt)
	if err != nil {
		t.Fatalf("ExecOpts(%q): %v", q, err)
	}
	return res
}

// TestSolutionModifierMatrix is the differential grid: every query shape
// must return identical rows in identical order across parallelism settings
// and across the streaming fast paths vs. the materializing pipeline.
func TestSolutionModifierMatrix(t *testing.T) {
	st := testStore(t)
	queries := []struct {
		name, q string
	}{
		{"limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 2`},
		{"limit-zero", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 0`},
		{"limit-zero-orderby", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 0`},
		{"offset-past-end", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } OFFSET 50`},
		{"offset-past-end-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 2 OFFSET 50`},
		{"offset-no-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } OFFSET 1`},
		{"limit-offset", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 1 OFFSET 1`},
		{"orderby-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 2`},
		{"orderby-desc-limit-offset", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY DESC(?n) LIMIT 2 OFFSET 1`},
		{"orderby-expr-limit", `PREFIX ex: <http://example.org/> SELECT ?c WHERE { ?c ex:population ?pop } ORDER BY DESC(?pop) LIMIT 1`},
		{"distinct-orderby-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT DISTINCT ?q WHERE { ?p foaf:knows ?q } ORDER BY ?q LIMIT 2`},
		{"distinct-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT DISTINCT ?q WHERE { ?p foaf:knows ?q } LIMIT 2`},
		{"join-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n ?m WHERE { ?p foaf:knows ?q . ?p foaf:name ?n . ?q foaf:name ?m } LIMIT 2`},
		{"filter-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n ; foaf:age ?a . FILTER(?a > 26) } LIMIT 1`},
		{"optional-orderby", `PREFIX ex: <http://example.org/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?s ?pop WHERE { ?s a ?t . OPTIONAL { ?s ex:population ?pop } } ORDER BY ?pop ?s LIMIT 4`},
		{"optional-orderby-desc", `PREFIX ex: <http://example.org/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?s ?pop WHERE { ?s a ?t . OPTIONAL { ?s ex:population ?pop } } ORDER BY DESC(?pop) ?s LIMIT 4`},
		{"union-limit", `PREFIX ex: <http://example.org/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?x WHERE { { ?x a foaf:Person } UNION { ?x a ex:City } } LIMIT 3`},
		{"values-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?p ?n WHERE { VALUES ?n { "Alice" "Carol" } ?p foaf:name ?n } LIMIT 1`},
		{"bind-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n ?twice WHERE { ?p foaf:age ?a ; foaf:name ?n . BIND(?a * 2 AS ?twice) } LIMIT 2`},
		{"expr-projection-limit", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT (?a + 1 AS ?next) WHERE { ?p foaf:age ?a } ORDER BY ?a LIMIT 2`},
		{"ask", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?p foaf:name "Carol" }`},
		{"ask-no-match", `PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?p foaf:name "Nobody" }`},
	}
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			ref := execOpts(t, st, tc.q, Options{Parallelism: 1, NoStream: true})
			for _, par := range []int{1, 4} {
				for _, noStream := range []bool{false, true} {
					got := execOpts(t, st, tc.q, Options{Parallelism: par, NoStream: noStream})
					label := fmt.Sprintf("par=%d noStream=%v", par, noStream)
					if !reflect.DeepEqual(got.Vars, ref.Vars) {
						t.Errorf("%s: vars = %v, want %v", label, got.Vars, ref.Vars)
					}
					if got.Ask != ref.Ask {
						t.Errorf("%s: ask = %v, want %v", label, got.Ask, ref.Ask)
					}
					if len(got.Rows) != len(ref.Rows) {
						t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(ref.Rows))
					}
					for i := range got.Rows {
						if !reflect.DeepEqual(got.Rows[i], ref.Rows[i]) {
							t.Errorf("%s: row %d = %v, want %v", label, i, got.Rows[i], ref.Rows[i])
						}
					}
				}
			}
		})
	}
}

// TestStreamedEqualsMaterialized runs the same queries through the Stream
// API and asserts row-for-row equality with the materializing pipeline.
func TestStreamedEqualsMaterialized(t *testing.T) {
	st := testStore(t)
	queries := []string{
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT 2`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } OFFSET 1`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY DESC(?n) LIMIT 2`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT DISTINCT ?q WHERE { ?p foaf:knows ?q } ORDER BY ?q LIMIT 2`,
		`PREFIX ex: <http://example.org/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?x WHERE { { ?x a foaf:Person } UNION { ?x a ex:City } } LIMIT 3`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n ?m WHERE { ?p foaf:knows ?q . ?p foaf:name ?n . ?q foaf:name ?m }`,
	}
	for _, par := range []int{1, 4} {
		for _, q := range queries {
			ref := execOpts(t, st, q, Options{Parallelism: par, NoStream: true})
			stm, err := PrepareStream(context.Background(), st, q, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("PrepareStream(%q): %v", q, err)
			}
			var rows []Binding
			if err := stm.Run(func(r Binding) bool {
				rows = append(rows, r)
				return true
			}); err != nil {
				t.Fatalf("Run(%q): %v", q, err)
			}
			if len(rows) != len(ref.Rows) {
				t.Fatalf("par=%d %q: streamed %d rows, materialized %d", par, q, len(rows), len(ref.Rows))
			}
			for i := range rows {
				if !reflect.DeepEqual(rows[i], ref.Rows[i]) {
					t.Errorf("par=%d %q: row %d = %v, want %v", par, q, i, rows[i], ref.Rows[i])
				}
			}
		}
	}
}

// TestLimitPushdownStopsScanning is the early-termination guarantee: a
// LIMIT 10 over a six-figure solution space must visit a small constant
// number of triples, not the whole index — at every parallelism setting.
func TestLimitPushdownStopsScanning(t *testing.T) {
	st := streamStore(t, 50000) // 100k triples
	q := `SELECT ?s ?o WHERE { ?s <http://s/value> ?o } LIMIT 10`
	for _, par := range []int{1, 4} {
		src := &countingSource{Store: st}
		res := execOpts(t, src, q, Options{Parallelism: par})
		if len(res.Rows) != 10 {
			t.Fatalf("par=%d: got %d rows, want 10", par, len(res.Rows))
		}
		pushed := src.visited.Load()

		src2 := &countingSource{Store: st}
		ref := execOpts(t, src2, q, Options{Parallelism: par, NoStream: true})
		full := src2.visited.Load()
		if !reflect.DeepEqual(res.Rows, ref.Rows) {
			t.Fatalf("par=%d: pushdown rows differ from materialized", par)
		}
		if pushed*10 > full {
			t.Errorf("par=%d: pushdown visited %d triples, materializing %d — want ≥10x fewer", par, pushed, full)
		}
	}
}

// TestLimitPushdownJoinCapped: with a join tail, the budget rides into the
// capped parallel executor; the scan side still terminates early.
func TestLimitPushdownJoinCapped(t *testing.T) {
	st := streamStore(t, 20000)
	q := `SELECT ?s ?v WHERE { ?s <http://s/link> ?o . ?o <http://s/value> ?v } LIMIT 7`
	for _, par := range []int{1, 8} {
		src := &countingSource{Store: st}
		res := execOpts(t, src, q, Options{Parallelism: par})
		if len(res.Rows) != 7 {
			t.Fatalf("par=%d: got %d rows, want 7", par, len(res.Rows))
		}
		pushed := src.visited.Load()
		ref := execOpts(t, st, q, Options{Parallelism: par, NoStream: true})
		if !reflect.DeepEqual(res.Rows, ref.Rows) {
			t.Fatalf("par=%d: capped join rows differ from materialized", par)
		}
		if pushed > 4000 { // full evaluation visits ≥40k
			t.Errorf("par=%d: join pushdown visited %d triples, want early termination", par, pushed)
		}
	}
}

// TestNestedGroupPushdown: redundant nesting must not defeat the
// early-termination plan — `{ { pattern } } LIMIT k` short-circuits like
// its un-nested form (and still matches the materializing rows), including
// with filters at both levels.
func TestNestedGroupPushdown(t *testing.T) {
	st := streamStore(t, 50000)
	for _, q := range []string{
		`SELECT ?s ?o WHERE { { ?s <http://s/value> ?o } } LIMIT 10`,
		`SELECT ?s ?o WHERE { { { ?s <http://s/value> ?o FILTER(?o >= 0) } } FILTER(?o < 1000) } LIMIT 10`,
	} {
		src := &countingSource{Store: st}
		res := execOpts(t, src, q, Options{Parallelism: 1})
		if len(res.Rows) != 10 {
			t.Fatalf("%s: got %d rows, want 10", q, len(res.Rows))
		}
		if v := src.visited.Load(); v > 1000 {
			t.Errorf("%s: visited %d triples, want early termination", q, v)
		}
		ref := execOpts(t, st, q, Options{Parallelism: 1, NoStream: true})
		if !reflect.DeepEqual(res.Rows, ref.Rows) {
			t.Errorf("%s: nested pushdown rows differ from materialized", q)
		}
	}
	// A group with no top-level pattern at all must not claim incremental
	// delivery.
	stm, err := PrepareStream(context.Background(), st,
		`SELECT ?s WHERE { { ?s <http://s/value> ?o } { ?s <http://s/link> ?t } }`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stm.Incremental() {
		t.Error("two sibling subgroups have no suspendable scan; Incremental must be false")
	}
}

// TestHugeLimitNoOverflow: offset+limit near MaxInt must not wrap negative
// and silently return an empty result — both window shapes must match the
// materializing path.
func TestHugeLimitNoOverflow(t *testing.T) {
	st := testStore(t)
	for _, q := range []string{
		fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } LIMIT %d OFFSET 1`, int64(^uint(0)>>1)),
		fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT %d OFFSET 1`, int64(^uint(0)>>1)),
	} {
		got := execOpts(t, st, q, Options{Parallelism: 1})
		ref := execOpts(t, st, q, Options{Parallelism: 1, NoStream: true})
		if len(got.Rows) != len(ref.Rows) || len(got.Rows) == 0 {
			t.Errorf("%s: streamed %d rows, materialized %d (want equal, non-zero)", q, len(got.Rows), len(ref.Rows))
		}
	}
}

// TestSubgroupPrefixNotIncremental: a pattern-bearing subgroup scheduled
// before the first top-level pattern is a full scan of its own, so the
// query must not be planned (or advertised) as incremental — but results
// still match.
func TestSubgroupPrefixNotIncremental(t *testing.T) {
	st := streamStore(t, 1000)
	q := `SELECT ?s ?v ?t WHERE { { ?s <http://s/value> ?v } ?s <http://s/link> ?t } LIMIT 3`
	stm, err := PrepareStream(context.Background(), st, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stm.Incremental() {
		t.Error("subgroup prefix forces full evaluation; Incremental must be false")
	}
	got := execOpts(t, st, q, Options{Parallelism: 1})
	ref := execOpts(t, st, q, Options{Parallelism: 1, NoStream: true})
	if !reflect.DeepEqual(got.Rows, ref.Rows) {
		t.Errorf("rows differ: %v vs %v", got.Rows, ref.Rows)
	}
}

// TestAskShortCircuits: ASK stops at the first matching solution.
func TestAskShortCircuits(t *testing.T) {
	st := streamStore(t, 50000)
	src := &countingSource{Store: st}
	res := execOpts(t, src, `ASK { ?s <http://s/value> ?o }`, Options{Parallelism: 1})
	if !res.Ask {
		t.Fatal("ask = false, want true")
	}
	if v := src.visited.Load(); v > 16 {
		t.Errorf("ASK visited %d triples, want a handful", v)
	}
}

// TestTopKHeapBoundsWork: ORDER BY + LIMIT must not materialize the full
// sorted set; the heap keeps offset+limit candidates. (Scanning is still
// complete — ORDER BY needs every solution — so we check only result
// equality here; memory behavior is exercised by the 100k benchmark.)
func TestTopKOrderByLimit(t *testing.T) {
	st := streamStore(t, 5000)
	for _, q := range []string{
		`SELECT ?s ?o WHERE { ?s <http://s/value> ?o } ORDER BY ?o ?s LIMIT 5`,
		`SELECT ?s ?o WHERE { ?s <http://s/value> ?o } ORDER BY DESC(?o) ?s LIMIT 5 OFFSET 3`,
		// Ties everywhere (o cycles mod 1000): the stable tiebreak must match.
		`SELECT ?s WHERE { ?s <http://s/value> ?o } ORDER BY ?o LIMIT 20`,
	} {
		for _, par := range []int{1, 4} {
			got := execOpts(t, st, q, Options{Parallelism: par})
			ref := execOpts(t, st, q, Options{Parallelism: par, NoStream: true})
			if !reflect.DeepEqual(got.Rows, ref.Rows) {
				t.Errorf("par=%d %q: top-k rows differ from materialized", par, q)
			}
		}
	}
}

// TestUnboundSortsFirstAsc pins SPARQL's ordering of unbound variables: an
// unbound sort key orders before every bound term under ASC, and therefore
// after every bound term under DESC — on the serial and parallel paths.
func TestUnboundOrderBy(t *testing.T) {
	st := testStore(t)
	base := `PREFIX ex: <http://example.org/>
SELECT ?s ?pop WHERE { ?s a ?t . OPTIONAL { ?s ex:population ?pop } } ORDER BY %s LIMIT 20`
	for _, par := range []int{1, 4} {
		for _, noStream := range []bool{false, true} {
			opt := Options{Parallelism: par, NoStream: noStream}
			asc := execOpts(t, st, fmt.Sprintf(base, "?pop ?s"), opt)
			if len(asc.Rows) == 0 {
				t.Fatal("no rows")
			}
			// ASC: all unbound rows first, then bound ascending.
			seenBound := false
			var prev rdf.Term
			for i, r := range asc.Rows {
				pop, bound := r["pop"]
				if bound {
					seenBound = true
					if prev != nil && rdf.Compare(prev, pop) > 0 {
						t.Errorf("asc row %d: %v after %v", i, pop, prev)
					}
					prev = pop
				} else if seenBound {
					t.Errorf("asc row %d: unbound after bound (par=%d noStream=%v)", i, par, noStream)
				}
			}
			if !seenBound {
				t.Fatal("expected some bound pop values")
			}
			// DESC: bound descending first, unbound rows last.
			desc := execOpts(t, st, fmt.Sprintf(base, "DESC(?pop) ?s"), opt)
			seenUnbound := false
			prev = nil
			for i, r := range desc.Rows {
				pop, bound := r["pop"]
				if !bound {
					seenUnbound = true
				} else {
					if seenUnbound {
						t.Errorf("desc row %d: bound after unbound (par=%d noStream=%v)", i, par, noStream)
					}
					if prev != nil && rdf.Compare(prev, pop) < 0 {
						t.Errorf("desc row %d: %v after %v", i, pop, prev)
					}
					prev = pop
				}
			}
			if !seenUnbound {
				t.Fatal("expected some unbound pop values")
			}
		}
	}
}

// TestDistinctSeparatorCollision is the regression for the bare-"|" dedup
// signature: rows ("a|b","c") and ("a","b|c") are distinct and must both
// survive DISTINCT.
func TestDistinctSeparatorCollision(t *testing.T) {
	triples := []rdf.Triple{
		{S: rdf.IRI("http://x/r1"), P: "http://x/p", O: rdf.NewLiteral("a|b")},
		{S: rdf.IRI("http://x/r1"), P: "http://x/q", O: rdf.NewLiteral("c")},
		{S: rdf.IRI("http://x/r2"), P: "http://x/p", O: rdf.NewLiteral("a")},
		{S: rdf.IRI("http://x/r2"), P: "http://x/q", O: rdf.NewLiteral("b|c")},
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	res := execOpts(t, st, `SELECT DISTINCT ?a ?b WHERE { ?s <http://x/p> ?a . ?s <http://x/q> ?b }`, Options{Parallelism: 1})
	if len(res.Rows) != 2 {
		t.Fatalf("DISTINCT dropped a row: got %d rows %v, want 2", len(res.Rows), res.Rows)
	}
	// And the unbound marker can't alias a literal either.
	res = execOpts(t, st, `SELECT DISTINCT ?a ?c WHERE { ?s <http://x/p> ?a . OPTIONAL { ?s <http://x/none> ?c } }`, Options{Parallelism: 1})
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

// TestUserOrdVariableSurvives is the regression for the "_ord" prefix
// match: a user variable legally named ?_ord0 must neither be clobbered by
// the hidden sort columns nor stripped from the results.
func TestUserOrdVariableSurvives(t *testing.T) {
	st := testStore(t)
	res := execOpts(t, st, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?_ord0 WHERE { ?p foaf:name ?_ord0 ; foaf:age ?a } ORDER BY DESC(?a)`, Options{Parallelism: 1})
	if got, want := res.Vars, []string{"_ord0"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("vars = %v, want %v", got, want)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// Ordered by DESC(age): Carol 35, Alice 30, Bob 25 — and each row must
	// carry the user's ?_ord0 binding (the name, not the hidden age key).
	want := []string{"Carol", "Alice", "Bob"}
	for i, r := range res.Rows {
		term, ok := r["_ord0"]
		if !ok {
			t.Fatalf("row %d: ?_ord0 was stripped: %v", i, r)
		}
		lit, ok := term.(rdf.Literal)
		if !ok || lit.Lexical != want[i] {
			t.Errorf("row %d: ?_ord0 = %v, want %q", i, term, want[i])
		}
		if len(r) != 1 {
			t.Errorf("row %d: hidden columns leaked: %v", i, r)
		}
	}
}

// TestStreamStopEarly: the consumer returning false stops evaluation
// without error (the client-disconnect path).
func TestStreamStopEarly(t *testing.T) {
	st := streamStore(t, 10000)
	src := &countingSource{Store: st}
	stm, err := PrepareStream(context.Background(), src, `SELECT ?s WHERE { ?s <http://s/value> ?o }`, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !stm.Incremental() {
		t.Fatal("plain scan should stream incrementally")
	}
	n := 0
	if err := stm.Run(func(Binding) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("delivered %d rows, want 3", n)
	}
	if v := src.visited.Load(); v > 16 {
		t.Errorf("visited %d triples after consumer stop, want a handful", v)
	}
}

// TestStreamEmitCanWriteStore: streamed rows are delivered with no store
// lock held, so a consumer may write to the store mid-stream — the
// previous driver emitted from inside the scan's read lock, where this
// write would deadlock (RWMutexes queue the writer behind the held read
// lock and the nested operations behind the writer).
func TestStreamEmitCanWriteStore(t *testing.T) {
	st := streamStore(t, 200)
	donec := make(chan error, 1)
	go func() {
		stm, err := PrepareStream(context.Background(), st,
			`SELECT ?s ?v WHERE { ?s <http://s/link> ?o . ?o <http://s/value> ?v }`, Options{Parallelism: 1})
		if err != nil {
			donec <- err
			return
		}
		rows := 0
		donec <- stm.Run(func(Binding) bool {
			rows++
			if rows == 1 {
				// A write from the consumer: only safe because no scan
				// lock is held during emission.
				if err := st.Add(rdf.Triple{
					S: rdf.IRI("http://s/mid-stream"), P: "http://s/value", O: rdf.NewInteger(1),
				}); err != nil {
					t.Error(err)
				}
			}
			return rows < 50
		})
	}()
	select {
	case err := <-donec:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("streaming query deadlocked against its own consumer's write")
	}
}

// TestStreamConcurrentWriters: a join-shaped streaming query makes
// progress while writers hammer the store from another goroutine.
func TestStreamConcurrentWriters(t *testing.T) {
	st := streamStore(t, 5000)
	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if err := st.Add(rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://s/w%d", i)), P: "http://s/other", O: rdf.NewInteger(int64(i)),
			}); err != nil {
				writerErr = err
				return
			}
		}
	}()
	donec := make(chan error, 1)
	go func() {
		stm, err := PrepareStream(context.Background(), st,
			`SELECT ?s ?v WHERE { ?s <http://s/link> ?o . ?o <http://s/value> ?v } LIMIT 500`, Options{Parallelism: 4})
		if err != nil {
			donec <- err
			return
		}
		donec <- stm.Run(func(Binding) bool { return true })
	}()
	select {
	case err := <-donec:
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if writerErr != nil {
			t.Fatal(writerErr)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("streaming query deadlocked against concurrent writers")
	}
}

// compactingSource compacts the store once, right after the Nth scanned
// page — simulating a concurrent writer crossing the merge threshold mid-
// stream, which reshuffles every positional cursor.
type compactingSource struct {
	*store.Store
	afterPages int // compact after this many ForEachPage calls
	pages      int
	compacted  bool
}

func (c *compactingSource) ForEachPage(p store.Pattern, pos, max int, fn func(rdf.Triple) bool) (int, bool) {
	next, done := c.Store.ForEachPage(p, pos, max, fn)
	c.pages++
	if !c.compacted && c.pages >= c.afterPages {
		c.compacted = true
		c.Store.Compact()
	}
	return next, done
}

// TestStreamRestartsOnCompaction: the materialized fast path detects the
// epoch change, discards the possibly-corrupt pages, restarts, and still
// returns exactly the materializing pipeline's rows.
func TestStreamRestartsOnCompaction(t *testing.T) {
	st := streamStore(t, 2000)
	// A pending non-matching delta entry so Compact actually reshuffles.
	if err := st.Add(rdf.Triple{S: rdf.IRI("http://s/pending"), P: "http://s/other", O: rdf.NewInteger(1)}); err != nil {
		t.Fatal(err)
	}
	src := &compactingSource{Store: st, afterPages: 1}
	q := `SELECT ?s ?v WHERE { ?s <http://s/value> ?v } LIMIT 50`
	res := execOpts(t, src, q, Options{Parallelism: 1})
	if !src.compacted {
		t.Fatal("test did not exercise mid-scan compaction")
	}
	ref := execOpts(t, st, q, Options{Parallelism: 1, NoStream: true})
	if !reflect.DeepEqual(res.Rows, ref.Rows) {
		t.Fatalf("restarted scan rows differ from materialized: %d vs %d rows", len(res.Rows), len(ref.Rows))
	}
}

// TestStreamRunAbortsAfterDeliveryOnCompaction: an incremental stream that
// already handed rows to the consumer cannot restart without duplicating
// them; a mid-scan compaction surfaces as an evaluation error instead of
// silent corruption.
func TestStreamRunAbortsAfterDeliveryOnCompaction(t *testing.T) {
	st := streamStore(t, 2000)
	if err := st.Add(rdf.Triple{S: rdf.IRI("http://s/pending"), P: "http://s/other", O: rdf.NewInteger(1)}); err != nil {
		t.Fatal(err)
	}
	// Compact after the second page: the first page's rows have already
	// reached the consumer by then, so a transparent restart is off the
	// table.
	src := &compactingSource{Store: st, afterPages: 2}
	stm, err := PrepareStream(context.Background(), src,
		`SELECT ?s ?v WHERE { ?s <http://s/value> ?v }`, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	err = stm.Run(func(Binding) bool {
		delivered++
		return true
	})
	if err == nil {
		t.Fatal("want an error after mid-stream compaction with rows delivered")
	}
	if !errorsIsEval(err) {
		t.Fatalf("error %v should classify as ErrEval", err)
	}
	if delivered == 0 {
		t.Fatal("expected some rows before the abort")
	}
}

func errorsIsEval(err error) bool { return errors.Is(err, ErrEval) }

// TestStreamAPIForms: form mismatches error, ASK streams, Incremental is
// false for shapes that must materialize.
func TestStreamAPIForms(t *testing.T) {
	st := testStore(t)
	sel, err := PrepareStream(context.Background(), st, `SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Ask(); err == nil {
		t.Error("Ask on SELECT should error")
	}
	ask, err := PrepareStream(context.Background(), st, `ASK { ?s ?p ?o }`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ask.Run(func(Binding) bool { return true }); err == nil {
		t.Error("Run on ASK should error")
	}
	ans, err := ask.Ask()
	if err != nil || !ans {
		t.Errorf("Ask = %v, %v; want true, nil", ans, err)
	}
	ordered, err := PrepareStream(context.Background(), st, `SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 1`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Incremental() {
		t.Error("ORDER BY must not report incremental delivery")
	}
	if _, err := PrepareStream(context.Background(), st, `SELECT ?s WHERE {`, Options{}); err == nil {
		t.Error("parse error should surface from PrepareStream")
	}
}

// TestParMapCapMatchesSequential: the capped parallel executor returns
// exactly the first cap rows of the sequential evaluation.
func TestParMapCapMatchesSequential(t *testing.T) {
	st := streamStore(t, 2000)
	// One input binding per entity, joined to its value triple.
	var input []Binding
	for i := 0; i < 2000; i++ {
		input = append(input, Binding{"s": rdf.IRI(fmt.Sprintf("http://s/e%d", i))})
	}
	tp := TriplePattern{
		S: Node{Var: "s"},
		P: Node{Term: rdf.IRI("http://s/value")},
		O: Node{Var: "o"},
	}
	seq := newEngine(context.Background(), st, Options{Parallelism: 1})
	want, err := seq.evalTriplePatternChunk(tp, input, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{0, 1, 17, 500, 5000} {
		for _, par := range []int{1, 8} {
			e := newEngine(context.Background(), st, Options{Parallelism: par})
			got, err := e.evalTriplePatternCap(tp, input, cap)
			if err != nil {
				t.Fatal(err)
			}
			expect := want
			if cap < len(expect) {
				expect = expect[:cap]
			}
			if len(got) == 0 && len(expect) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, expect) {
				t.Errorf("cap=%d par=%d: got %d rows, want first %d of sequential", cap, par, len(got), len(expect))
			}
		}
	}
}

// TestStreamSelectStarVars: SELECT * on the streaming path resolves the
// header statically (every bindable pattern variable, sorted); rows match
// the materializing path.
func TestStreamSelectStarVars(t *testing.T) {
	st := testStore(t)
	q := `PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT * WHERE { ?p foaf:knows ?q } LIMIT 2`
	got := execOpts(t, st, q, Options{Parallelism: 1})
	ref := execOpts(t, st, q, Options{Parallelism: 1, NoStream: true})
	if !reflect.DeepEqual(got.Vars, []string{"p", "q"}) {
		t.Fatalf("vars = %v, want [p q]", got.Vars)
	}
	if !reflect.DeepEqual(got.Rows, ref.Rows) {
		t.Errorf("rows differ: %v vs %v", got.Rows, ref.Rows)
	}
}
