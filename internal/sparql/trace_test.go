package sparql

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/explain"
	"github.com/lodviz/lodviz/internal/obs"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// traceStore is a tiny hand-checkable dataset: e1,e2 carry cat "c1", the
// link chain is e1→e2→e3, and every entity has a num value.
func traceStore(t *testing.T) *store.Store {
	t.Helper()
	e := func(i int) rdf.IRI { return rdf.IRI("http://x/e" + string(rune('0'+i))) }
	st, err := store.Load([]rdf.Triple{
		{S: e(1), P: "http://x/cat", O: rdf.NewLiteral("c1")},
		{S: e(2), P: "http://x/cat", O: rdf.NewLiteral("c1")},
		{S: e(3), P: "http://x/cat", O: rdf.NewLiteral("c2")},
		{S: e(1), P: "http://x/num", O: rdf.NewInteger(1)},
		{S: e(2), P: "http://x/num", O: rdf.NewInteger(2)},
		{S: e(3), P: "http://x/num", O: rdf.NewInteger(3)},
		{S: e(1), P: "http://x/link", O: e(2)},
		{S: e(2), P: "http://x/link", O: e(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Compact()
	return st
}

const traceQuery = `SELECT ?a ?b ?v WHERE { ?a <http://x/cat> "c1" . ?a <http://x/link> ?b . ?b <http://x/num> ?v }`

// TestTraceGolden pins the span structure for a 3-pattern BGP on both
// executors: the ID pipeline (scan-cross seed, then two merge joins) and
// the term-space hash path. Durations are zeroed; everything else — span
// nesting, pattern order after planning, strategies, per-pattern row
// counts — must match byte for byte.
func TestTraceGolden(t *testing.T) {
	st := traceStore(t)
	const plan = `?a <http://x/cat> \"c1\" . ?a <http://x/link> ?b . ?b <http://x/num> ?v`
	cases := []struct {
		name     string
		noIDJoin bool
		want     string
	}{
		{
			name: "id-join",
			want: `{"root":{"name":"query","durationMicros":0,"children":[` +
				`{"name":"parse","durationMicros":0},` +
				`{"name":"execute","strategy":"materialized","rowsOut":2,"durationMicros":0,"children":[` +
				`{"name":"plan","detail":"` + plan + `","durationMicros":0},` +
				`{"name":"pattern","detail":"?a <http://x/cat> \"c1\"","strategy":"id-cross","rowsIn":1,"rowsOut":2,"durationMicros":0},` +
				`{"name":"pattern","detail":"?a <http://x/link> ?b","strategy":"id-merge","rowsIn":2,"rowsOut":2,"durationMicros":0},` +
				`{"name":"pattern","detail":"?b <http://x/num> ?v","strategy":"id-merge","rowsIn":2,"rowsOut":2,"durationMicros":0}]}]}}`,
		},
		{
			name:     "hash",
			noIDJoin: true,
			want: `{"root":{"name":"query","durationMicros":0,"children":[` +
				`{"name":"parse","durationMicros":0},` +
				`{"name":"execute","strategy":"materialized","rowsOut":2,"durationMicros":0,"children":[` +
				`{"name":"plan","detail":"` + plan + `","durationMicros":0},` +
				`{"name":"pattern","detail":"?a <http://x/cat> \"c1\"","strategy":"hash","rowsIn":1,"rowsOut":2,"durationMicros":0},` +
				`{"name":"pattern","detail":"?a <http://x/link> ?b","strategy":"hash","rowsIn":2,"rowsOut":2,"durationMicros":0},` +
				`{"name":"pattern","detail":"?b <http://x/num> ?v","strategy":"hash","rowsIn":2,"rowsOut":2,"durationMicros":0}]}]}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := explain.NewTrace()
			res, err := ExecOpts(st, traceQuery, Options{Parallelism: 1, NoIDJoin: tc.noIDJoin, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			tr.Finish()
			if len(res.Rows) != 2 {
				t.Fatalf("rows = %d, want 2", len(res.Rows))
			}
			tr.ZeroDurations()
			var sb strings.Builder
			enc := json.NewEncoder(&sb)
			enc.SetEscapeHTML(false)
			if err := enc.Encode(tr); err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimSuffix(sb.String(), "\n"); got != tc.want {
				t.Errorf("trace mismatch\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestTraceRowCountsMatchResults cross-checks the trace against the
// executed plan on a larger differential dataset: the final pattern span's
// rowsOut must equal the result row count, and every span's rowsIn must be
// the previous span's rowsOut.
func TestTraceRowCountsMatchResults(t *testing.T) {
	st := idJoinStore(t)
	q := `SELECT ?e ?o ?v WHERE { ?e <http://x/cat> "c2" . ?e <http://x/link> ?o . ?o <http://x/num> ?v }`
	for _, noID := range []bool{false, true} {
		tr := explain.NewTrace()
		res, err := ExecOpts(st, q, Options{Parallelism: 1, NoIDJoin: noID, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		var pats []*explain.Span
		var walk func(s *explain.Span)
		walk = func(s *explain.Span) {
			if s.Name == "pattern" {
				pats = append(pats, s)
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(tr.Root())
		if len(pats) != 3 {
			t.Fatalf("noIDJoin=%v: %d pattern spans, want 3", noID, len(pats))
		}
		for i := 1; i < len(pats); i++ {
			if pats[i].RowsIn != pats[i-1].RowsOut {
				t.Errorf("noIDJoin=%v: span %d rowsIn %d != prior rowsOut %d", noID, i, pats[i].RowsIn, pats[i-1].RowsOut)
			}
		}
		if last := pats[len(pats)-1]; last.RowsOut != len(res.Rows) {
			t.Errorf("noIDJoin=%v: final span rowsOut %d != result rows %d", noID, last.RowsOut, len(res.Rows))
		}
		if s := tr.Summary(); s == "" {
			t.Error("empty trace summary")
		}
	}
}

// TestEngineMetrics drives both executors and the streaming path, checking
// the counters move where expected.
func TestEngineMetrics(t *testing.T) {
	st := traceStore(t)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	if _, err := ExecOpts(st, traceQuery, Options{Parallelism: 1, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.RunsIDJoin.Value() == 0 {
		t.Error("RunsIDJoin did not move")
	}
	if met.QueriesMaterialized.Value() != 1 {
		t.Errorf("QueriesMaterialized = %d, want 1", met.QueriesMaterialized.Value())
	}
	if met.RowsOut.Value() == 0 || met.MatchesScanned.Value() == 0 {
		t.Errorf("RowsOut=%d MatchesScanned=%d, want > 0", met.RowsOut.Value(), met.MatchesScanned.Value())
	}
	if _, err := ExecOpts(st, traceQuery, Options{Parallelism: 1, NoIDJoin: true, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.RunsHash.Value() == 0 {
		t.Error("RunsHash did not move")
	}
	if _, err := ExecOpts(st, `SELECT ?s WHERE { ?s <http://x/cat> "c1" } LIMIT 1`, Options{Parallelism: 1, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.QueriesStreamed.Value() != 1 {
		t.Errorf("QueriesStreamed = %d, want 1", met.QueriesStreamed.Value())
	}
	if met.PushdownHits.Value() != 1 {
		t.Errorf("PushdownHits = %d, want 1", met.PushdownHits.Value())
	}
	if met.PagesScanned.Value() == 0 {
		t.Error("PagesScanned did not move")
	}
	if _, err := ExecUpdate(st, `INSERT DATA { <http://x/e9> <http://x/cat> "c9" }`); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecUpdateCtx(t.Context(), st, `INSERT DATA { <http://x/e8> <http://x/cat> "c8" }`, Options{Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if met.Updates.Value() != 1 {
		t.Errorf("Updates = %d, want 1", met.Updates.Value())
	}
}
