package sparql

import (
	"context"
	"fmt"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// This file is the SPARQL 1.1 Update subset: INSERT DATA, DELETE DATA, and
// DELETE WHERE, parsed by the same lexer/parser machinery as queries and
// executed against an UpdateStore. The WHERE scan of DELETE WHERE reuses the
// BGP engine (ID-space merge joins and all), so a pattern delete plans like
// the equivalent SELECT.

// UpdateStore is the mutable extension of Source that updates execute
// against. *store.Store satisfies it.
type UpdateStore interface {
	Source
	// AddBatch atomically inserts a batch, returning how many triples
	// changed the live set.
	AddBatch(triples []rdf.Triple) (int, error)
	// DeleteBatch atomically removes a batch, returning how many triples
	// were present.
	DeleteBatch(triples []rdf.Triple) (int, error)
}

var _ UpdateStore = (*store.Store)(nil)

// Update is a parsed SPARQL update request: one or more operations,
// ';'-separated in the source, executed in order.
type Update struct {
	Ops []UpdateOp
}

// UpdateOp is one update operation.
type UpdateOp interface{ updateOp() }

// InsertData inserts ground triples (INSERT DATA).
type InsertData struct{ Triples []rdf.Triple }

// DeleteData removes ground triples (DELETE DATA).
type DeleteData struct{ Triples []rdf.Triple }

// DeleteWhere removes every instantiation of its pattern that matches
// (DELETE WHERE): the group is both the WHERE clause and the delete
// template, and — per the grammar — may contain only triple patterns.
type DeleteWhere struct{ Pattern *Group }

func (InsertData) updateOp()  {}
func (DeleteData) updateOp()  {}
func (DeleteWhere) updateOp() {}

// UpdateResult reports what an executed update changed.
type UpdateResult struct {
	// Inserted counts triples that were actually added (duplicates of
	// existing triples count zero).
	Inserted int
	// Deleted counts triples that were actually removed.
	Deleted int
	// Ops counts the executed operations.
	Ops int
}

// ParseUpdate parses a SPARQL update string (PREFIX/BASE prologue, then
// ';'-separated INSERT DATA / DELETE DATA / DELETE WHERE operations).
// Errors match ErrParse under errors.Is.
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lx: &lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, wrapParse(err)
	}
	u, err := p.parseUpdate()
	if err != nil {
		return nil, wrapParse(err)
	}
	return u, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	u := &Update{}
	for {
		if err := p.parsePrologue(); err != nil {
			return nil, err
		}
		if p.tok.kind == tEOF {
			break
		}
		op, err := p.parseUpdateOp()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue // a trailing ';' before EOF is fine
		}
		break
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("unexpected trailing %v", p.tok.kind)
	}
	if len(u.Ops) == 0 {
		return nil, p.errf("empty update request")
	}
	return u, nil
}

func (p *parser) parseUpdateOp() (UpdateOp, error) {
	switch {
	case p.isKeyword("INSERT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DATA"); err != nil {
			return nil, err
		}
		ts, err := p.parseGroundData(true)
		if err != nil {
			return nil, err
		}
		return InsertData{Triples: ts}, nil
	case p.isKeyword("DELETE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isKeyword("DATA"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			// DELETE DATA forbids blank nodes: a blank node label denotes
			// some unnamed resource, so "delete this specific triple" is
			// ill-defined for it.
			ts, err := p.parseGroundData(false)
			if err != nil {
				return nil, err
			}
			return DeleteData{Triples: ts}, nil
		case p.isKeyword("WHERE"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			g, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if len(g.Filters) > 0 {
				return nil, p.errf("DELETE WHERE allows only triple patterns (no FILTER)")
			}
			for _, el := range g.Elems {
				if _, ok := el.(TriplePattern); !ok {
					return nil, p.errf("DELETE WHERE allows only triple patterns")
				}
			}
			return DeleteWhere{Pattern: g}, nil
		default:
			return nil, p.errf("expected DATA or WHERE after DELETE")
		}
	default:
		return nil, p.errf("expected INSERT or DELETE")
	}
}

// parseGroundData parses '{' ground triples '}' — a triples block with
// variables (and anonymous []) rejected. allowBlank admits labeled blank
// nodes in subject/object position (INSERT DATA yes, DELETE DATA no).
func (p *parser) parseGroundData(allowBlank bool) ([]rdf.Triple, error) {
	if err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	p.groundOnly = true
	defer func() { p.groundOnly = false }()
	g := &Group{}
	for p.tok.kind != tRBrace {
		if err := p.parseTriplesBlock(g); err != nil {
			return nil, err
		}
		for p.tok.kind == tDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}

	ts := make([]rdf.Triple, 0, len(g.Elems))
	for _, el := range g.Elems {
		tp, ok := el.(TriplePattern)
		if !ok || tp.S.IsVar() || tp.P.IsVar() || tp.O.IsVar() {
			return nil, p.errf("update data must be ground triples")
		}
		pred, ok := tp.P.Term.(rdf.IRI)
		if !ok {
			return nil, p.errf("update data predicate must be an IRI")
		}
		t := rdf.Triple{S: tp.S.Term, P: pred, O: tp.O.Term}
		if !t.Valid() {
			return nil, p.errf("invalid triple in update data: %v", t)
		}
		if !allowBlank {
			if _, b := t.S.(rdf.BlankNode); b {
				return nil, p.errf("blank nodes are not allowed in DELETE DATA")
			}
			if _, b := t.O.(rdf.BlankNode); b {
				return nil, p.errf("blank nodes are not allowed in DELETE DATA")
			}
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// ExecUpdate parses and executes an update with default options.
func ExecUpdate(st UpdateStore, src string) (*UpdateResult, error) {
	//lint:allow ctxflow compat wrapper: ExecUpdateCtx is the cancellable form
	return ExecUpdateCtx(context.Background(), st, src, Options{})
}

// ExecUpdateCtx parses and executes an update. Parse errors match ErrParse;
// execution errors match ErrEval.
func ExecUpdateCtx(ctx context.Context, st UpdateStore, src string, opt Options) (*UpdateResult, error) {
	u, err := ParseUpdate(src)
	if err != nil {
		return nil, err
	}
	return EvalUpdateCtx(ctx, st, u, opt)
}

// EvalUpdateCtx executes a parsed update's operations in order. Each
// operation's batch is applied atomically (one AddBatch/DeleteBatch call),
// but a multi-operation request is not transactional across operations: an
// error leaves earlier operations applied, and the result counts them.
func EvalUpdateCtx(ctx context.Context, st UpdateStore, u *Update, opt Options) (*UpdateResult, error) {
	if opt.Metrics != nil {
		opt.Metrics.Updates.Inc()
	}
	res := &UpdateResult{}
	for _, op := range u.Ops {
		if err := ctx.Err(); err != nil {
			return res, wrapEval(err)
		}
		switch o := op.(type) {
		case InsertData:
			n, err := st.AddBatch(o.Triples)
			if err != nil {
				return res, wrapEval(err)
			}
			res.Inserted += n
		case DeleteData:
			n, err := st.DeleteBatch(o.Triples)
			if err != nil {
				return res, wrapEval(err)
			}
			res.Deleted += n
		case DeleteWhere:
			ts, err := matchDeleteWhere(ctx, st, o.Pattern, opt)
			if err != nil {
				return res, err
			}
			n, err := st.DeleteBatch(ts)
			if err != nil {
				return res, wrapEval(err)
			}
			res.Deleted += n
		default:
			return res, wrapEval(fmt.Errorf("sparql: unsupported update operation %T", op))
		}
		res.Ops++
	}
	return res, nil
}

// matchDeleteWhere runs the pattern through the BGP engine and instantiates
// it per solution, deduplicating the resulting ground triples. Solutions
// that leave a position unbound or non-ground (per SPARQL Update, e.g. a
// literal in subject position never materializes) are skipped.
func matchDeleteWhere(ctx context.Context, st UpdateStore, g *Group, opt Options) ([]rdf.Triple, error) {
	e := newEngine(ctx, st, opt)
	rows, err := e.evalGroup(g, []Binding{{}})
	if err != nil {
		return nil, wrapEval(err)
	}
	seen := make(map[rdf.Triple]struct{})
	var out []rdf.Triple
	resolve := func(n Node, b Binding) rdf.Term {
		if n.IsVar() {
			return b[n.Var]
		}
		return n.Term
	}
	for _, b := range rows {
		for _, el := range g.Elems {
			tp := el.(TriplePattern) // parseUpdateOp guarantees the shape
			pred, ok := resolve(tp.P, b).(rdf.IRI)
			if !ok {
				continue
			}
			t := rdf.Triple{S: resolve(tp.S, b), P: pred, O: resolve(tp.O, b)}
			if !t.Valid() {
				continue
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out, nil
}
