package sparql

import (
	"errors"
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func updStore(t *testing.T, triples ...rdf.Triple) *store.Store {
	t.Helper()
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInsertData(t *testing.T) {
	st := updStore(t)
	res, err := ExecUpdate(st, `
		PREFIX ex: <http://ex/>
		INSERT DATA {
			ex:a ex:p ex:b ;
			     ex:q "v"@en , 42 .
			_:b1 a ex:Thing .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 4 || res.Deleted != 0 || res.Ops != 1 {
		t.Fatalf("result = %+v, want 4 inserted, 1 op", res)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d triples, want 4", st.Len())
	}
	for _, want := range []rdf.Triple{
		{S: rdf.IRI("http://ex/a"), P: "http://ex/p", O: rdf.IRI("http://ex/b")},
		{S: rdf.IRI("http://ex/a"), P: "http://ex/q", O: rdf.NewLangLiteral("v", "en")},
		{S: rdf.IRI("http://ex/a"), P: "http://ex/q", O: rdf.NewTypedLiteral("42", rdf.XSDInteger)},
		{S: rdf.BlankNode("b1"), P: rdf.RDFType, O: rdf.IRI("http://ex/Thing")},
	} {
		if !st.Contains(want) {
			t.Errorf("store missing %v", want)
		}
	}

	// Idempotent: re-inserting the same data changes nothing, and the
	// generation stays put so caches survive.
	gen := st.Generation()
	res, err = ExecUpdate(st, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 {
		t.Errorf("duplicate insert counted %d", res.Inserted)
	}
	if st.Generation() != gen {
		t.Error("no-op insert advanced the generation")
	}
}

func TestDeleteData(t *testing.T) {
	a := rdf.Triple{S: rdf.IRI("http://ex/a"), P: "http://ex/p", O: rdf.IRI("http://ex/b")}
	b := rdf.Triple{S: rdf.IRI("http://ex/c"), P: "http://ex/p", O: rdf.NewInteger(7)}
	st := updStore(t, a, b)
	res, err := ExecUpdate(st, `PREFIX ex: <http://ex/>
		DELETE DATA { ex:a ex:p ex:b . ex:missing ex:p ex:b }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted %d, want 1 (the absent triple counts zero)", res.Deleted)
	}
	if st.Contains(a) || !st.Contains(b) {
		t.Fatal("wrong triple deleted")
	}
}

func TestDeleteWhere(t *testing.T) {
	ent := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://ex/e%d", i)) }
	var triples []rdf.Triple
	for i := 0; i < 10; i++ {
		triples = append(triples,
			rdf.Triple{S: ent(i), P: "http://ex/cat", O: rdf.NewLiteral(fmt.Sprintf("c%d", i%2))},
			rdf.Triple{S: ent(i), P: "http://ex/num", O: rdf.NewInteger(int64(i))},
		)
	}
	st := updStore(t, triples...)

	// Joined pattern: both patterns of every matching solution are deleted.
	res, err := ExecUpdate(st, `PREFIX ex: <http://ex/>
		DELETE WHERE { ?e ex:cat "c1" . ?e ex:num ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 10 {
		t.Fatalf("deleted %d, want 10 (5 entities × 2 triples)", res.Deleted)
	}
	if st.Len() != 10 {
		t.Fatalf("store holds %d, want 10", st.Len())
	}
	// No c1 entity survives, every c0 entity is intact.
	for i := 0; i < 10; i++ {
		want := i%2 == 0
		if got := st.Contains(rdf.Triple{S: ent(i), P: "http://ex/num", O: rdf.NewInteger(int64(i))}); got != want {
			t.Errorf("entity %d num triple present=%v, want %v", i, got, want)
		}
	}

	// Non-matching pattern deletes nothing and is not an error.
	res, err = ExecUpdate(st, `DELETE WHERE { ?s <http://nowhere/p> ?o }`)
	if err != nil || res.Deleted != 0 {
		t.Fatalf("empty DELETE WHERE: %+v, %v", res, err)
	}
}

func TestMultiOpUpdate(t *testing.T) {
	st := updStore(t)
	res, err := ExecUpdate(st, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b . ex:a ex:p ex:c } ;
		DELETE DATA { ex:a ex:p ex:b } ;
		INSERT DATA { ex:a ex:p ex:d } ;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 3 || res.Inserted != 3 || res.Deleted != 1 {
		t.Fatalf("result = %+v, want 3 ops, 3 inserted, 1 deleted", res)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d, want 2", st.Len())
	}
}

func TestUpdateParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"query not update":        `SELECT ?s WHERE { ?s ?p ?o }`,
		"variable in insert data": `INSERT DATA { ?s <http://ex/p> <http://ex/o> }`,
		"anon in insert data":     `INSERT DATA { [] <http://ex/p> <http://ex/o> }`,
		"blank in delete data":    `DELETE DATA { _:b <http://ex/p> <http://ex/o> }`,
		"blank obj delete data":   `DELETE DATA { <http://ex/s> <http://ex/p> _:b }`,
		"filter in delete where":  `DELETE WHERE { ?s ?p ?o FILTER(?o > 3) }`,
		"optional in delete":      `DELETE WHERE { ?s ?p ?o OPTIONAL { ?s ?p ?q } }`,
		"bare delete":             `DELETE { <http://ex/s> <http://ex/p> ?o }`,
		"empty":                   ``,
		"trailing garbage":        `INSERT DATA { <http://ex/s> <http://ex/p> 1 } nonsense`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseUpdate(src); err == nil {
				t.Fatalf("ParseUpdate(%q) succeeded", src)
			} else if !errors.Is(err, ErrParse) {
				t.Fatalf("error %v is not ErrParse", err)
			}
		})
	}
}

func TestUpdateGenerationInvalidation(t *testing.T) {
	st := updStore(t, rdf.Triple{S: rdf.IRI("http://ex/a"), P: "http://ex/p", O: rdf.IRI("http://ex/b")})
	gen := st.Generation()
	if _, err := ExecUpdate(st, `INSERT DATA { <http://ex/x> <http://ex/p> 1 }`); err != nil {
		t.Fatal(err)
	}
	if st.Generation() == gen {
		t.Fatal("effective insert did not advance the generation")
	}
	gen = st.Generation()
	if _, err := ExecUpdate(st, `DELETE WHERE { <http://ex/x> <http://ex/p> ?v }`); err != nil {
		t.Fatal(err)
	}
	if st.Generation() == gen {
		t.Fatal("effective delete did not advance the generation")
	}
}
