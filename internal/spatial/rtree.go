// Package spatial provides the spatial access methods behind graphVizdb-
// style disk-based graph visualization ([22,23] in the survey): an in-memory
// R-tree for window queries over layout coordinates, and a disk-backed tile
// grid (tiles.go) that keeps only the viewport's pages resident.
package spatial

import (
	"math"
)

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect normalizes corner order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// PointRect returns a degenerate rectangle at a point.
func PointRect(x, y float64) Rect { return Rect{MinX: x, MinY: y, MaxX: x, MaxY: y} }

// Intersects reports whether two rectangles overlap (boundaries touch
// counts).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// union returns the bounding rectangle of two rectangles.
func (r Rect) union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// area returns the rectangle's area.
func (r Rect) area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// enlargement returns how much r must grow to include o.
func (r Rect) enlargement(o Rect) float64 { return r.union(o).area() - r.area() }

// Entry is one indexed object.
type Entry struct {
	Rect Rect
	// ID is the caller's object identifier (e.g. a graph node id).
	ID uint32
}

const (
	maxEntries = 16
	minEntries = 4
)

type rnode struct {
	rect     Rect
	leaf     bool
	entries  []Entry  // leaf payload
	children []*rnode // internal children
}

// RTree is an in-memory R-tree with quadratic split.
// The zero value is an empty tree ready for use.
type RTree struct {
	root *rnode
	size int
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Insert adds an entry.
func (t *RTree) Insert(e Entry) {
	if t.root == nil {
		t.root = &rnode{leaf: true, rect: e.Rect}
	}
	n1, n2 := t.insert(t.root, e)
	if n2 != nil {
		// Root split: grow the tree.
		t.root = &rnode{
			rect:     n1.rect.union(n2.rect),
			children: []*rnode{n1, n2},
		}
	}
	t.size++
}

// insert recursively adds e under n; on overflow it splits and returns both
// halves, else returns (n, nil).
func (t *RTree) insert(n *rnode, e Entry) (*rnode, *rnode) {
	n.rect = n.rect.union(e.Rect)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return splitLeaf(n)
		}
		return n, nil
	}
	best := chooseChild(n, e.Rect)
	c1, c2 := t.insert(n.children[best], e)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return n, nil
}

func chooseChild(n *rnode, r Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range n.children {
		enl := c.rect.enlargement(r)
		if enl < bestEnl || (enl == bestEnl && c.rect.area() < bestArea) {
			best, bestEnl, bestArea = i, enl, c.rect.area()
		}
	}
	return best
}

// splitLeaf performs a quadratic split of an overflowing leaf.
func splitLeaf(n *rnode) (*rnode, *rnode) {
	seedA, seedB := quadraticSeeds(len(n.entries), func(i int) Rect { return n.entries[i].Rect })
	a := &rnode{leaf: true, rect: n.entries[seedA].Rect}
	b := &rnode{leaf: true, rect: n.entries[seedB].Rect}
	a.entries = append(a.entries, n.entries[seedA])
	b.entries = append(b.entries, n.entries[seedB])
	for i, e := range n.entries {
		if i == seedA || i == seedB {
			continue
		}
		assignEntry(a, b, e)
	}
	return a, b
}

func assignEntry(a, b *rnode, e Entry) {
	// Respect minimum fill.
	if len(a.entries)+minEntries >= maxEntries && len(b.entries) < minEntries {
		b.entries = append(b.entries, e)
		b.rect = b.rect.union(e.Rect)
		return
	}
	if len(b.entries)+minEntries >= maxEntries && len(a.entries) < minEntries {
		a.entries = append(a.entries, e)
		a.rect = a.rect.union(e.Rect)
		return
	}
	if a.rect.enlargement(e.Rect) <= b.rect.enlargement(e.Rect) {
		a.entries = append(a.entries, e)
		a.rect = a.rect.union(e.Rect)
	} else {
		b.entries = append(b.entries, e)
		b.rect = b.rect.union(e.Rect)
	}
}

func splitInternal(n *rnode) (*rnode, *rnode) {
	seedA, seedB := quadraticSeeds(len(n.children), func(i int) Rect { return n.children[i].rect })
	a := &rnode{rect: n.children[seedA].rect}
	b := &rnode{rect: n.children[seedB].rect}
	a.children = append(a.children, n.children[seedA])
	b.children = append(b.children, n.children[seedB])
	for i, c := range n.children {
		if i == seedA || i == seedB {
			continue
		}
		if a.rect.enlargement(c.rect) <= b.rect.enlargement(c.rect) {
			a.children = append(a.children, c)
			a.rect = a.rect.union(c.rect)
		} else {
			b.children = append(b.children, c)
			b.rect = b.rect.union(c.rect)
		}
	}
	return a, b
}

// quadraticSeeds picks the pair wasting the most area together.
func quadraticSeeds(n int, rect func(int) Rect) (int, int) {
	sa, sb, worst := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rect(i).union(rect(j)).area() - rect(i).area() - rect(j).area()
			if d > worst {
				sa, sb, worst = i, j, d
			}
		}
	}
	return sa, sb
}

// Search returns all entries whose rectangles intersect the window.
func (t *RTree) Search(window Rect) []Entry {
	var out []Entry
	t.SearchFunc(window, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// SearchFunc streams intersecting entries to fn; return false to stop.
func (t *RTree) SearchFunc(window Rect, fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *rnode) bool
	walk = func(n *rnode) bool {
		if !n.rect.Intersects(window) {
			return true
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.Rect.Intersects(window) {
					if !fn(e) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Height returns the tree height (0 for an empty tree, 1 for a single leaf).
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}
