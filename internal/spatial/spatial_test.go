package spatial

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // normalized
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 3 || r.MaxY != 4 {
		t.Errorf("NewRect = %+v", r)
	}
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if !a.Contains(Rect{0.5, 0.5, 1, 1}) || a.Contains(b) {
		t.Error("Contains wrong")
	}
	p := PointRect(1, 1)
	if !a.Intersects(p) {
		t.Error("point intersect wrong")
	}
}

func TestRTreeInsertSearch(t *testing.T) {
	var tr RTree
	for i := 0; i < 100; i++ {
		x, y := float64(i%10), float64(i/10)
		tr.Insert(Entry{Rect: PointRect(x, y), ID: uint32(i)})
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := tr.Search(NewRect(2, 2, 4, 4))
	if len(got) != 9 { // 3x3 grid points
		t.Errorf("window search = %d entries, want 9", len(got))
	}
	all := tr.Search(NewRect(-1, -1, 11, 11))
	if len(all) != 100 {
		t.Errorf("full search = %d", len(all))
	}
	none := tr.Search(NewRect(100, 100, 200, 200))
	if len(none) != 0 {
		t.Errorf("empty search = %d", len(none))
	}
}

func TestRTreeSearchFuncEarlyStop(t *testing.T) {
	var tr RTree
	for i := 0; i < 50; i++ {
		tr.Insert(Entry{Rect: PointRect(float64(i), 0), ID: uint32(i)})
	}
	n := 0
	tr.SearchFunc(NewRect(-1, -1, 100, 1), func(Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}

// Property: R-tree search agrees with brute force for random data and
// windows.
func TestRTreeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		var tr RTree
		entries := make([]Entry, n)
		for i := range entries {
			e := Entry{
				Rect: NewRect(rng.Float64()*100, rng.Float64()*100,
					rng.Float64()*100, rng.Float64()*100),
				ID: uint32(i),
			}
			entries[i] = e
			tr.Insert(e)
		}
		for q := 0; q < 10; q++ {
			w := NewRect(rng.Float64()*100, rng.Float64()*100,
				rng.Float64()*100, rng.Float64()*100)
			got := map[uint32]bool{}
			for _, e := range tr.Search(w) {
				got[e.ID] = true
			}
			want := 0
			for _, e := range entries {
				if e.Rect.Intersects(w) {
					want++
					if !got[e.ID] {
						return false
					}
				}
			}
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRTreeHeightGrows(t *testing.T) {
	var tr RTree
	if tr.Height() != 0 {
		t.Error("empty height != 0")
	}
	for i := 0; i < 1000; i++ {
		tr.Insert(Entry{Rect: PointRect(float64(i), float64(i%37)), ID: uint32(i)})
	}
	if h := tr.Height(); h < 2 || h > 6 {
		t.Errorf("height = %d, unexpected for 1000 entries", h)
	}
}

func newTileStore(t *testing.T, grid, pool int) *TileStore {
	t.Helper()
	ts, err := NewTileStore(filepath.Join(t.TempDir(), "tiles.db"),
		NewRect(0, 0, 1000, 1000), grid, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestTileStoreRoundTrip(t *testing.T) {
	ts := newTileStore(t, 8, 16)
	var pts []TilePoint
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		pts = append(pts, TilePoint{ID: uint32(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	if err := ts.AddAll(pts); err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 2000 {
		t.Errorf("Len = %d", ts.Len())
	}
	// Full-world query returns everything.
	got, err := ts.Query(NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Errorf("full query = %d", len(got))
	}
}

func TestTileStoreWindowMatchesBruteForce(t *testing.T) {
	ts := newTileStore(t, 10, 32)
	rng := rand.New(rand.NewSource(2))
	var pts []TilePoint
	for i := 0; i < 3000; i++ {
		pts = append(pts, TilePoint{ID: uint32(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	if err := ts.AddAll(pts); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 10; q++ {
		w := NewRect(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		got, err := ts.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			// Float32 storage rounds coordinates; compare using the same
			// precision.
			x, y := float64(float32(p.X)), float64(float32(p.Y))
			if x >= w.MinX && x <= w.MaxX && y >= w.MinY && y <= w.MaxY {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("window %v: got %d, want %d", w, len(got), want)
		}
	}
}

func TestTileStoreBoundedResidency(t *testing.T) {
	ts := newTileStore(t, 16, 8) // only 8 pages in memory
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		p := TilePoint{ID: uint32(i), X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if err := ts.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	if ts.Pool().Resident() > 8 {
		t.Errorf("Resident = %d > pool size 8", ts.Pool().Resident())
	}
	// Small-window queries must work with the tiny pool.
	got, err := ts.Query(NewRect(100, 100, 200, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("window query returned nothing")
	}
	if ts.Pool().Resident() > 8 {
		t.Errorf("Resident after query = %d", ts.Pool().Resident())
	}
}

func TestTileStoreQueryFuncEarlyStop(t *testing.T) {
	ts := newTileStore(t, 4, 8)
	for i := 0; i < 100; i++ {
		ts.Add(TilePoint{ID: uint32(i), X: 500, Y: 500})
	}
	n := 0
	err := ts.QueryFunc(NewRect(0, 0, 1000, 1000), func(TilePoint) bool {
		n++
		return n < 7
	})
	if err != nil || n != 7 {
		t.Errorf("early stop visited %d (err %v)", n, err)
	}
}

func TestTileStoreClampsOutOfWorld(t *testing.T) {
	ts := newTileStore(t, 4, 8)
	if err := ts.Add(TilePoint{ID: 1, X: -50, Y: 2000}); err != nil {
		t.Fatal(err)
	}
	got, err := ts.Query(NewRect(-100, 1000, 0, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("out-of-world point lost: %v", got)
	}
}

func TestTileStoreStatsString(t *testing.T) {
	ts := newTileStore(t, 4, 8)
	ts.Add(TilePoint{ID: 1, X: 1, Y: 1})
	if s := ts.Stats(); s == "" {
		t.Error("empty stats")
	}
}
