package spatial

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/lodviz/lodviz/internal/disk"
)

// TilePoint is one positioned object stored in a tile (a laid-out graph
// node, a geo entity, ...).
type TilePoint struct {
	ID   uint32
	X, Y float64
}

const (
	// recordSize is the on-page encoding size of one TilePoint:
	// uint32 id + float32 x + float32 y.
	recordSize = 12
	// recordsPerPage leaves 4 bytes for the in-page record count.
	recordsPerPage = (disk.PageSize - 4) / recordSize
)

// TileStore partitions layout space into a G×G grid of tiles whose points
// live on disk pages; a viewport query touches only the pages of
// intersecting tiles, read through a bounded buffer pool. This is the
// graphVizdb architecture: the interactive working set is the viewport, not
// the graph.
type TileStore struct {
	store *disk.PageStore
	pool  *disk.BufferPool
	grid  int
	world Rect
	// pages[tile] lists the page chain of each tile.
	pages [][]disk.PageID
	// counts[tile] is the number of points in the tile.
	counts []int
	total  int
}

// NewTileStore creates a tile store with a grid×grid tiling of world,
// backed by the file at path, caching at most poolPages pages in memory.
func NewTileStore(path string, world Rect, grid, poolPages int) (*TileStore, error) {
	if grid < 1 {
		grid = 1
	}
	ps, err := disk.Create(path)
	if err != nil {
		return nil, err
	}
	return &TileStore{
		store:  ps,
		pool:   disk.NewBufferPool(ps, poolPages),
		grid:   grid,
		world:  world,
		pages:  make([][]disk.PageID, grid*grid),
		counts: make([]int, grid*grid),
	}, nil
}

// Close releases the backing file.
func (ts *TileStore) Close() error { return ts.store.Close() }

// Len returns the number of stored points.
func (ts *TileStore) Len() int { return ts.total }

// Pool exposes the buffer pool for instrumentation.
func (ts *TileStore) Pool() *disk.BufferPool { return ts.pool }

// tileOf maps a coordinate to its tile index, clamping to the world.
func (ts *TileStore) tileOf(x, y float64) int {
	fx := (x - ts.world.MinX) / (ts.world.MaxX - ts.world.MinX)
	fy := (y - ts.world.MinY) / (ts.world.MaxY - ts.world.MinY)
	tx := int(fx * float64(ts.grid))
	ty := int(fy * float64(ts.grid))
	tx = clamp(tx, 0, ts.grid-1)
	ty = clamp(ty, 0, ts.grid-1)
	return ty*ts.grid + tx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Add stores one point. Points are appended to their tile's page chain.
func (ts *TileStore) Add(p TilePoint) error {
	tile := ts.tileOf(p.X, p.Y)
	pageList := ts.pages[tile]
	inTile := ts.counts[tile]
	slot := inTile % recordsPerPage
	var pid disk.PageID
	if slot == 0 {
		// Need a fresh page for this tile.
		var err error
		pid, err = ts.store.Alloc()
		if err != nil {
			return err
		}
		ts.pages[tile] = append(pageList, pid)
	} else {
		pid = pageList[len(pageList)-1]
	}
	data, err := ts.pool.Get(pid)
	if err != nil {
		return err
	}
	off := 4 + slot*recordSize
	binary.LittleEndian.PutUint32(data[off:], p.ID)
	binary.LittleEndian.PutUint32(data[off+4:], math.Float32bits(float32(p.X)))
	binary.LittleEndian.PutUint32(data[off+8:], math.Float32bits(float32(p.Y)))
	binary.LittleEndian.PutUint32(data[0:], uint32(slot+1))
	ts.pool.Unpin(pid, true)
	ts.counts[tile]++
	ts.total++
	return nil
}

// AddAll bulk-loads points and flushes. Points are clustered by tile first
// so each tile's pages fill sequentially — without this, random insertion
// order thrashes the bounded buffer pool (one page read + write per point).
func (ts *TileStore) AddAll(points []TilePoint) error {
	ordered := make([]TilePoint, len(points))
	copy(ordered, points)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ts.tileOf(ordered[i].X, ordered[i].Y) < ts.tileOf(ordered[j].X, ordered[j].Y)
	})
	for _, p := range ordered {
		if err := ts.Add(p); err != nil {
			return err
		}
	}
	return ts.pool.Flush()
}

// Query returns all points inside the window, touching only intersecting
// tiles' pages.
func (ts *TileStore) Query(window Rect) ([]TilePoint, error) {
	var out []TilePoint
	err := ts.QueryFunc(window, func(p TilePoint) bool {
		out = append(out, p)
		return true
	})
	return out, err
}

// QueryFunc streams points inside the window to fn; return false to stop.
func (ts *TileStore) QueryFunc(window Rect, fn func(TilePoint) bool) error {
	tx0, ty0 := ts.tileCoord(window.MinX, window.MinY)
	tx1, ty1 := ts.tileCoord(window.MaxX, window.MaxY)
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			tile := ty*ts.grid + tx
			for _, pid := range ts.pages[tile] {
				data, err := ts.pool.Get(pid)
				if err != nil {
					return err
				}
				n := int(binary.LittleEndian.Uint32(data[0:]))
				stop := false
				for i := 0; i < n; i++ {
					off := 4 + i*recordSize
					p := TilePoint{
						ID: binary.LittleEndian.Uint32(data[off:]),
						X:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:]))),
						Y:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[off+8:]))),
					}
					if p.X >= window.MinX && p.X <= window.MaxX && p.Y >= window.MinY && p.Y <= window.MaxY {
						if !fn(p) {
							stop = true
							break
						}
					}
				}
				ts.pool.Unpin(pid, false)
				if stop {
					return nil
				}
			}
		}
	}
	return nil
}

func (ts *TileStore) tileCoord(x, y float64) (int, int) {
	fx := (x - ts.world.MinX) / (ts.world.MaxX - ts.world.MinX)
	fy := (y - ts.world.MinY) / (ts.world.MaxY - ts.world.MinY)
	return clamp(int(fx*float64(ts.grid)), 0, ts.grid-1),
		clamp(int(fy*float64(ts.grid)), 0, ts.grid-1)
}

// Stats summarizes the store's physical state for experiments.
func (ts *TileStore) Stats() string {
	return fmt.Sprintf("points=%d pages=%d resident=%d hitrate=%.2f",
		ts.total, ts.store.NumPages(), ts.pool.Resident(), ts.pool.HitRate())
}
