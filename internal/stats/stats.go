// Package stats provides the descriptive statistics lodviz surfaces next to
// visualizations (the "Statistics" capability column of the survey's Table 1)
// and that the reduction techniques rely on: moments, quantiles, histograms,
// correlation, and an online (Welford) accumulator for streaming/progressive
// settings.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by computations that need at least one value.
var ErrEmpty = errors.New("stats: empty input")

// Summary holds the descriptive statistics of a numeric sample.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	// Variance is the unbiased sample variance (n-1 denominator).
	Variance float64
	StdDev   float64
	Median   float64
	Q1, Q3   float64
	Skewness float64
}

// Summarize computes a Summary in one pass plus a sort for the quantiles.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var acc Online
	for _, x := range xs {
		acc.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:        len(xs),
		Min:      sorted[0],
		Max:      sorted[len(sorted)-1],
		Mean:     acc.Mean(),
		Variance: acc.Variance(),
		StdDev:   math.Sqrt(acc.Variance()),
		Median:   quantileSorted(sorted, 0.5),
		Q1:       quantileSorted(sorted, 0.25),
		Q3:       quantileSorted(sorted, 0.75),
	}
	if s.StdDev > 0 {
		var m3 float64
		for _, x := range xs {
			d := x - s.Mean
			m3 += d * d * d
		}
		m3 /= float64(len(xs))
		s.Skewness = m3 / math.Pow(s.StdDev, 3)
	}
	return s, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples — the statistic SemLens-style scatter analysis reports.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	n := float64(len(xs))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Online is a Welford-style streaming accumulator: mean and variance without
// retaining the values, as progressive visualization requires.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge combines another accumulator into this one (parallel aggregation).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.mean += delta * n2 / total
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased sample variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 for an empty accumulator).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for an empty accumulator).
func (o *Online) Max() float64 { return o.max }

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count out-of-range observations.
	Under, Over int
}

// NewHistogram creates a histogram with n bins covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}
