package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("N/Min/Max = %d/%g/%g", s.N, s.Min, s.Max)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEqual(s.Variance, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", s.Variance, 32.0/7.0)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g,%v want %g", c.q, got, err, c.want)
		}
	}
	if got, _ := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %g", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %g,%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect anti-correlation = %g", r)
	}
	if _, err := Pearson(xs, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	s, _ := Summarize(xs)
	if !almostEqual(o.Mean(), s.Mean, 1e-9) {
		t.Errorf("online mean %g != batch %g", o.Mean(), s.Mean)
	}
	if !almostEqual(o.Variance(), s.Variance, 1e-9) {
		t.Errorf("online var %g != batch %g", o.Variance(), s.Variance)
	}
	if o.Min() != s.Min || o.Max() != s.Max {
		t.Errorf("online min/max %g/%g != %g/%g", o.Min(), o.Max(), s.Min, s.Max)
	}
}

// Property: merging two online accumulators equals accumulating the
// concatenation.
func TestOnlineMergeProperty(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(split)%100
		k := int(split) % n
		var all, left, right Online
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 5
			all.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		return left.N() == all.N() &&
			almostEqual(left.Mean(), all.Mean(), 1e-9) &&
			almostEqual(left.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	b.Add(5)
	a.Merge(b) // empty receiver
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty = %d/%g", a.N(), a.Mean())
	}
	var c Online
	a.Merge(c) // empty argument
	if a.N() != 1 {
		t.Error("merge of empty changed state")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.99, -1, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1 fall in [0,2)
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %g", h.BinWidth())
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 1.7, 3} {
		h.Add(x)
	}
	if h.Mode() != 1 {
		t.Errorf("Mode = %d, want 1", h.Mode())
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo, n<1 are both repaired
	h.Add(5)
	if h.Total() != 1 {
		t.Errorf("degenerate histogram Total = %d", h.Total())
	}
}

// Property: histogram never loses observations.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-10, 10, 7)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		n := 0
		for _, v := range vals {
			if !math.IsNaN(v) {
				n++
			}
		}
		return h.Total()+h.Under+h.Over == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkewnessSign(t *testing.T) {
	right := []float64{1, 1, 1, 2, 2, 3, 8, 15}
	s, _ := Summarize(right)
	if s.Skewness <= 0 {
		t.Errorf("right-skewed data has skewness %g", s.Skewness)
	}
}
