package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func sortedTriples(st *Store) []string {
	var out []string
	for _, t := range st.Triples() {
		out = append(out, t.String())
	}
	sort.Strings(out)
	return out
}

func sameTriples(t *testing.T, a, b *Store) {
	t.Helper()
	as, bs := sortedTriples(a), sortedTriples(b)
	if len(as) != len(bs) {
		t.Fatalf("triple counts differ: %d != %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("triple %d differs: %s != %s", i, as[i], bs[i])
		}
	}
}

func TestAddBatchAtomicOnInvalid(t *testing.T) {
	st := New()
	if err := st.Add(tr("pre", "p", "o")); err != nil {
		t.Fatal(err)
	}
	gen, size, terms := st.Generation(), st.Len(), st.NumTerms()

	batch := []rdf.Triple{
		tr("a", "p", "o"),
		{S: rdf.NewLiteral("bad subject"), P: iri("p"), O: iri("o")}, // invalid
		tr("b", "p", "o"),
	}
	added, err := st.AddBatch(batch)
	if err == nil {
		t.Fatal("AddBatch accepted an invalid triple")
	}
	if added != 0 {
		t.Fatalf("added = %d on error, want 0", added)
	}
	if st.Generation() != gen || st.Len() != size || st.NumTerms() != terms {
		t.Fatalf("rejected batch mutated the store: gen %d->%d, len %d->%d, terms %d->%d",
			gen, st.Generation(), size, st.Len(), terms, st.NumTerms())
	}
	if st.Contains(tr("a", "p", "o")) || st.Contains(tr("b", "p", "o")) {
		t.Fatal("triples from a rejected batch are visible")
	}
}

func TestAddBatchGenerationOncePerEffectiveBatch(t *testing.T) {
	st := New()
	batch := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "2"), tr("c", "p", "3")}
	added, err := st.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("added = %d, want 3", added)
	}
	if st.Generation() != 1 {
		t.Fatalf("generation = %d after one batch, want 1", st.Generation())
	}
	// Same batch again: zero effect, zero generation movement.
	added, err = st.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || st.Generation() != 1 {
		t.Fatalf("duplicate batch: added=%d gen=%d, want 0/1", added, st.Generation())
	}
	// Overlapping batch: only the new triple counts.
	added, err = st.AddBatch(append(batch, tr("d", "p", "4")))
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || st.Generation() != 2 {
		t.Fatalf("overlap batch: added=%d gen=%d, want 1/2", added, st.Generation())
	}
}

func TestAddBatchInBatchDuplicates(t *testing.T) {
	st := New()
	added, err := st.AddBatch([]rdf.Triple{tr("a", "p", "o"), tr("a", "p", "o"), tr("a", "p", "o")})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || st.Len() != 1 {
		t.Fatalf("added=%d len=%d, want 1/1", added, st.Len())
	}
}

func TestAddBatchEmptyAndNil(t *testing.T) {
	st := New()
	for _, batch := range [][]rdf.Triple{nil, {}} {
		added, err := st.AddBatch(batch)
		if err != nil || added != 0 {
			t.Fatalf("empty batch: added=%d err=%v", added, err)
		}
	}
	if st.Generation() != 0 {
		t.Fatalf("empty batches advanced generation to %d", st.Generation())
	}
}

func TestAddBatchUndelete(t *testing.T) {
	st := New()
	batch := []rdf.Triple{tr("a", "p", "1"), tr("b", "p", "2")}
	if _, err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	if !st.Delete(tr("a", "p", "1")) {
		t.Fatal("delete failed")
	}
	gen := st.Generation()
	added, err := st.AddBatch(batch) // one undelete + one duplicate
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1 (the undelete)", added)
	}
	if st.Generation() != gen+1 {
		t.Fatalf("generation moved %d, want 1", st.Generation()-gen)
	}
	if !st.Contains(tr("a", "p", "1")) || st.Len() != 2 {
		t.Fatalf("undelete not visible: len=%d", st.Len())
	}
}

// TestAddBatchEquivalentToSequentialAdd is the property at the heart of the
// bulk path: for random workloads, one AddBatch must produce exactly the
// same live triple set as a loop of Add, while moving the generation once.
func TestAddBatchEquivalentToSequentialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(400)
		batch := make([]rdf.Triple, n)
		for i := range batch {
			// Small alphabets force duplicates both in-batch and vs earlier rounds.
			batch[i] = tr(
				fmt.Sprintf("s%d", rng.Intn(20)),
				fmt.Sprintf("p%d", rng.Intn(5)),
				fmt.Sprintf("o%d", rng.Intn(30)),
			)
		}

		seq := New()
		for _, trp := range batch {
			if err := seq.Add(trp); err != nil {
				t.Fatal(err)
			}
		}
		bat := New()
		added, err := bat.AddBatch(batch)
		if err != nil {
			t.Fatal(err)
		}

		sameTriples(t, seq, bat)
		if added != seq.Len() {
			t.Fatalf("round %d: AddBatch added %d, sequential landed %d live triples", round, added, seq.Len())
		}
		if added > 0 && bat.Generation() != 1 {
			t.Fatalf("round %d: batch generation = %d, want 1", round, bat.Generation())
		}
	}
}

// TestAddBatchEquivalenceOnPopulatedStore starts both stores from the same
// populated, partially tombstoned state and applies the same batch.
func TestAddBatchEquivalenceOnPopulatedStore(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mkBase := func() *Store {
		st := New()
		for i := 0; i < 300; i++ {
			st.Add(tr(fmt.Sprintf("s%d", i%15), fmt.Sprintf("p%d", i%4), fmt.Sprintf("o%d", i%40)))
		}
		st.Compact()
		for i := 0; i < 40; i++ {
			st.Delete(tr(fmt.Sprintf("s%d", i%15), fmt.Sprintf("p%d", i%4), fmt.Sprintf("o%d", i%40)))
		}
		return st
	}
	batch := make([]rdf.Triple, 250)
	for i := range batch {
		batch[i] = tr(
			fmt.Sprintf("s%d", rng.Intn(18)),
			fmt.Sprintf("p%d", rng.Intn(4)),
			fmt.Sprintf("o%d", rng.Intn(45)),
		)
	}

	seq := mkBase()
	genSeqBefore := seq.Generation()
	for _, trp := range batch {
		if err := seq.Add(trp); err != nil {
			t.Fatal(err)
		}
	}
	bat := mkBase()
	genBatBefore := bat.Generation()
	added, err := bat.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	sameTriples(t, seq, bat)
	if wantAdded := int(seq.Generation() - genSeqBefore); added != wantAdded {
		t.Fatalf("AddBatch added %d, sequential made %d effective inserts", added, wantAdded)
	}
	if added > 0 && bat.Generation() != genBatBefore+1 {
		t.Fatalf("batch moved generation by %d, want 1", bat.Generation()-genBatBefore)
	}
}

// TestDeleteReAddMergeInterleavings drives delete → re-add → merge cycles
// through every interleaving of the merge point and checks the store against
// a model map after each step.
func TestDeleteReAddMergeInterleavings(t *testing.T) {
	type step struct {
		op   string // "add", "addbatch", "del", "merge"
		trip rdf.Triple
	}
	a, b, c := tr("a", "p", "1"), tr("b", "p", "2"), tr("c", "p", "3")
	scenarios := [][]step{
		// Delete from base, re-add via batch before the merge.
		{{op: "addbatch", trip: a}, {op: "merge"}, {op: "del", trip: a}, {op: "addbatch", trip: a}, {op: "merge"}},
		// Delete from delta (never merged), then re-add.
		{{op: "add", trip: a}, {op: "del", trip: a}, {op: "addbatch", trip: a}, {op: "merge"}},
		// Delete, merge the tombstone away, then re-add.
		{{op: "add", trip: a}, {op: "merge"}, {op: "del", trip: a}, {op: "merge"}, {op: "addbatch", trip: a}},
		// Interleave two triples' lifecycles across merges.
		{
			{op: "addbatch", trip: a}, {op: "add", trip: b}, {op: "merge"},
			{op: "del", trip: a}, {op: "addbatch", trip: c}, {op: "del", trip: b},
			{op: "merge"}, {op: "addbatch", trip: a}, {op: "addbatch", trip: b},
		},
		// Double delete / double re-add churn.
		{
			{op: "addbatch", trip: a}, {op: "merge"}, {op: "del", trip: a},
			{op: "addbatch", trip: a}, {op: "del", trip: a}, {op: "merge"},
			{op: "addbatch", trip: a},
		},
	}
	for si, steps := range scenarios {
		st := New()
		model := map[rdf.Triple]bool{}
		for pi, s := range steps {
			switch s.op {
			case "add":
				if err := st.Add(s.trip); err != nil {
					t.Fatal(err)
				}
				model[s.trip] = true
			case "addbatch":
				if _, err := st.AddBatch([]rdf.Triple{s.trip}); err != nil {
					t.Fatal(err)
				}
				model[s.trip] = true
			case "del":
				st.Delete(s.trip)
				delete(model, s.trip)
			case "merge":
				st.Compact()
			}
			if st.Len() != len(model) {
				t.Fatalf("scenario %d step %d (%s): Len = %d, model = %d", si, pi, s.op, st.Len(), len(model))
			}
			for trp := range model {
				if !st.Contains(trp) {
					t.Fatalf("scenario %d step %d: model triple %v missing", si, pi, trp)
				}
			}
			for _, trp := range st.Triples() {
				if !model[trp] {
					t.Fatalf("scenario %d step %d: phantom triple %v", si, pi, trp)
				}
			}
		}
	}
}

func TestLoadEmptyKeepsGenerationZero(t *testing.T) {
	for _, input := range [][]rdf.Triple{nil, {}} {
		st, err := Load(input)
		if err != nil {
			t.Fatal(err)
		}
		if st.Generation() != 0 {
			t.Fatalf("empty Load advanced generation to %d", st.Generation())
		}
	}
}

func TestLoadBumpsGenerationOnce(t *testing.T) {
	st, err := Load([]rdf.Triple{tr("a", "p", "1"), tr("b", "p", "2")})
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 1 {
		t.Fatalf("Load generation = %d, want exactly 1", st.Generation())
	}
}

// TestEstimateCountFiltersDelta: after an insert burst on one predicate, the
// estimate for a different predicate must not absorb the whole delta.
func TestEstimateCountFiltersDelta(t *testing.T) {
	st := New()
	for i := 0; i < 200; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "base", fmt.Sprintf("o%d", i)))
	}
	st.Compact()
	// Burst of delta inserts on an unrelated predicate (small enough to
	// stay unmerged: 500 <= 1024).
	for i := 0; i < 500; i++ {
		st.Add(tr(fmt.Sprintf("b%d", i), "burst", fmt.Sprintf("x%d", i)))
	}
	got := st.EstimateCount(Pattern{P: iri("base")})
	if got != 200 {
		t.Fatalf("EstimateCount(base) = %d after unrelated burst, want 200", got)
	}
	if got := st.EstimateCount(Pattern{P: iri("burst")}); got != 500 {
		t.Fatalf("EstimateCount(burst) = %d, want 500", got)
	}
	if got := st.EstimateCount(Pattern{}); got != 700 {
		t.Fatalf("EstimateCount(all) = %d, want 700", got)
	}
	if got := st.EstimateCount(Pattern{S: iri("b7"), P: iri("burst")}); got != 1 {
		t.Fatalf("EstimateCount(b7,burst) = %d, want 1", got)
	}
}
