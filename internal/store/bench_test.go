package store

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// ingestBatch builds n distinct triples over a realistic shape: many
// subjects, few predicates, a mid-sized object vocabulary.
func ingestBatch(n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := 0; i < n; i++ {
		out[i] = rdf.T(
			rdf.IRI(fmt.Sprintf("http://e/s%d", i/8)),
			rdf.IRI(fmt.Sprintf("http://e/p%d", i%16)),
			rdf.IRI(fmt.Sprintf("http://e/o%d", i)),
		)
	}
	return out
}

const ingestN = 100_000

// BenchmarkAddBatch is the bulk write path: one lock, one sort, one
// generation bump for the whole batch.
func BenchmarkAddBatch(b *testing.B) {
	triples := ingestBatch(ingestN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := New()
		if _, err := st.AddBatch(triples); err != nil {
			b.Fatal(err)
		}
		if st.Len() != ingestN {
			b.Fatalf("Len = %d", st.Len())
		}
	}
	b.ReportMetric(float64(ingestN*b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkAddAll goes through the batch wrapper — it must track
// BenchmarkAddBatch, since AddAll is AddBatch.
func BenchmarkAddAll(b *testing.B) {
	triples := ingestBatch(ingestN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := New()
		if err := st.AddAll(triples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ingestN*b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkAddSequential is the old write path — one lock acquisition and
// one delta duplicate-scan per triple — kept as the baseline the batch path
// is measured against.
func BenchmarkAddSequential(b *testing.B) {
	triples := ingestBatch(ingestN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := New()
		for _, t := range triples {
			if err := st.Add(t); err != nil {
				b.Fatal(err)
			}
		}
		if st.Len() != ingestN {
			b.Fatalf("Len = %d", st.Len())
		}
	}
	b.ReportMetric(float64(ingestN*b.N)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkSnapshotWrite serializes a 100k-triple store.
func BenchmarkSnapshotWrite(b *testing.B) {
	st := New()
	if _, err := st.AddBatch(ingestBatch(ingestN)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.WriteSnapshot(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
