package store

import (
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// FuzzDictionaryRoundTrip interns arbitrary terms (IRIs, blank nodes, plain /
// typed / language-tagged literals) and checks the dictionary is a bijection:
// term → ID → term is the identity, re-interning is stable, and distinct
// terms never collide on one ID.
func FuzzDictionaryRoundTrip(f *testing.F) {
	f.Add("http://example.org/a", "b", "lit", "en", byte(0))
	f.Add("", "", "", "", byte(1))
	f.Add("http://x/\x00weird", "_:b0", "42", "http://www.w3.org/2001/XMLSchema#integer", byte(2))
	f.Fuzz(func(t *testing.T, a, b, lex, extra string, kind byte) {
		terms := []rdf.Term{
			rdf.IRI(a),
			rdf.BlankNode(b),
			rdf.Literal{Lexical: lex},
			rdf.Literal{Lexical: lex, Datatype: rdf.IRI(extra)},
			rdf.Literal{Lexical: lex, Lang: extra},
		}
		st := New()
		st.mu.Lock()
		ids := make(map[rdf.Term]ID, len(terms))
		for _, tm := range terms {
			id := st.intern(tm)
			if id == 0 {
				t.Fatalf("intern(%v) returned reserved ID 0", tm)
			}
			if prev, ok := ids[tm]; ok && prev != id {
				t.Fatalf("re-interning %v changed ID: %d then %d", tm, prev, id)
			}
			ids[tm] = id
		}
		st.mu.Unlock()
		// Every distinct term must map to a distinct ID...
		seen := map[ID]rdf.Term{}
		for tm, id := range ids {
			if other, dup := seen[id]; dup {
				t.Fatalf("terms %v and %v share ID %d", tm, other, id)
			}
			seen[id] = tm
		}
		// ...and decode back to exactly itself, via both decode surfaces.
		for tm, id := range ids {
			got, ok := st.Term(id)
			if !ok || got != tm {
				t.Fatalf("Term(%d) = %v,%v; want %v", id, got, ok, tm)
			}
			if back, ok := st.LookupTermID(tm); !ok || back != id {
				t.Fatalf("LookupTermID(%v) = %d,%v; want %d", tm, back, ok, id)
			}
		}
		allIDs := make([]ID, 0, len(ids))
		wantTerms := make([]rdf.Term, 0, len(ids))
		for tm, id := range ids {
			allIDs = append(allIDs, id)
			wantTerms = append(wantTerms, tm)
		}
		batch := st.Terms(allIDs)
		for i := range allIDs {
			if batch[i] != wantTerms[i] {
				t.Fatalf("Terms batch decode mismatch at %d: %v vs %v", i, batch[i], wantTerms[i])
			}
		}
	})
}
