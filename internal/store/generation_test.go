package store

import (
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestGenerationAdvancesOnMutation(t *testing.T) {
	st := New()
	g0 := st.Generation()
	if err := st.Add(tr("s", "p", "o")); err != nil {
		t.Fatal(err)
	}
	g1 := st.Generation()
	if g1 <= g0 {
		t.Fatalf("generation did not advance on Add: %d -> %d", g0, g1)
	}
	if !st.Delete(tr("s", "p", "o")) {
		t.Fatal("delete failed")
	}
	if st.Generation() <= g1 {
		t.Fatalf("generation did not advance on Delete: %d -> %d", g1, st.Generation())
	}
}

func TestGenerationStableOnNoOps(t *testing.T) {
	st := New()
	st.Add(tr("s", "p", "o"))
	g := st.Generation()

	// Duplicate insert: no content change.
	st.Add(tr("s", "p", "o"))
	if st.Generation() != g {
		t.Fatalf("duplicate Add advanced generation: %d -> %d", g, st.Generation())
	}
	// Deleting an absent triple: no content change.
	st.Delete(tr("a", "b", "c"))
	if st.Generation() != g {
		t.Fatalf("no-op Delete advanced generation: %d -> %d", g, st.Generation())
	}
	// Compaction reorganizes storage but not content.
	st.Compact()
	if st.Generation() != g {
		t.Fatalf("Compact advanced generation: %d -> %d", g, st.Generation())
	}
	// Reads never advance it.
	st.Len()
	st.Contains(tr("s", "p", "o"))
	st.Cardinalities()
	if st.Generation() != g {
		t.Fatalf("reads advanced generation: %d -> %d", g, st.Generation())
	}
}

func TestGenerationLoadNonZero(t *testing.T) {
	st, err := Load([]rdf.Triple{tr("s", "p", "o")})
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() == 0 {
		t.Fatal("loaded store must start at a non-zero generation")
	}
}

func TestGenerationUndeleteAdvances(t *testing.T) {
	st := New()
	trp := tr("s", "p", "o")
	st.Add(trp)
	st.Compact()
	st.Delete(trp)
	g := st.Generation()
	st.Add(trp) // undelete path
	if st.Generation() <= g {
		t.Fatalf("undelete did not advance generation: %d -> %d", g, st.Generation())
	}
	if !st.Contains(trp) {
		t.Fatal("undeleted triple missing")
	}
}

// TestGenerationConcurrent advances the generation from many writers while a
// reader polls for monotonicity; run under -race this pins the locking.
func TestGenerationConcurrent(t *testing.T) {
	st := New()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				st.Add(rdf.Triple{
					S: rdf.IRI("http://e/s"),
					P: rdf.IRI("http://e/p"),
					O: rdf.NewInteger(int64(w*1000 + i)),
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
				g := st.Generation()
				if g < last {
					t.Errorf("generation went backwards: %d -> %d", last, g)
					return
				}
				last = g
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-pollerDone
	// Each successful distinct insert advanced the generation exactly once.
	if st.Generation() != uint64(st.Len()) {
		t.Fatalf("generation = %d, live triples = %d (distinct inserts must advance once each)",
			st.Generation(), st.Len())
	}
}
