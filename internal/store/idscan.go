package store

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
)

// This file is the store's dictionary-ID scan surface: everything the SPARQL
// engine needs to run joins entirely in uint32 ID space — permutation
// selection, sorted range materialization with lock-free gaps between pages,
// batch ID→term decoding — so terms are only materialized once per emitted
// solution instead of once per probe.

// IDTriple is one triple in dictionary-ID space.
type IDTriple struct{ S, P, O ID }

// Position names one position of a triple pattern. PosAny means "no
// preference": permutation selection then only has to cover the bound
// positions, not produce any particular result order.
type Position int8

const (
	PosAny Position = iota
	PosS
	PosP
	PosO
)

func (p Position) String() string {
	switch p {
	case PosS:
		return "S"
	case PosP:
		return "P"
	case PosO:
		return "O"
	default:
		return "any"
	}
}

// ScanOrder identifies which permutation index a scan walks; results arrive
// sorted in that permutation's (first, second, third) key order.
type ScanOrder int8

const (
	OrderSPO ScanOrder = iota
	OrderPOS
	OrderOSP
	OrderPSO
)

func (o ScanOrder) String() string {
	switch o {
	case OrderSPO:
		return "SPO"
	case OrderPOS:
		return "POS"
	case OrderOSP:
		return "OSP"
	case OrderPSO:
		return "PSO"
	default:
		return "?"
	}
}

// PermutationFor picks the permutation that answers a pattern with the given
// bound positions as one contiguous index range. With lead == PosAny it
// always succeeds and returns the cheapest default. A lead of PosS/PosP/PosO
// additionally requires the scan to yield results grouped and sorted by that
// (necessarily unbound) position — the property merge joins need; ok=false
// means no permutation delivers it (the two gaps are lead P with only O
// bound and lead O with only S bound, which would need OPS/SOP).
func PermutationFor(sBound, pBound, oBound bool, lead Position) (ScanOrder, bool) {
	switch lead {
	case PosS:
		if sBound {
			return 0, false
		}
		switch {
		case pBound && oBound:
			return OrderPOS, true // residual key after (p,o) prefix is s
		case pBound:
			return OrderPSO, true
		case oBound:
			return OrderOSP, true
		default:
			return OrderSPO, true
		}
	case PosP:
		if pBound {
			return 0, false
		}
		switch {
		case sBound && oBound:
			return OrderOSP, true // residual key after (o,s) prefix is p
		case sBound:
			return OrderSPO, true
		case oBound:
			return 0, false // would need OPS
		default:
			return OrderPSO, true
		}
	case PosO:
		if oBound {
			return 0, false
		}
		switch {
		case sBound && pBound:
			return OrderSPO, true
		case pBound:
			return OrderPOS, true
		case sBound:
			return 0, false // would need SOP
		default:
			return OrderOSP, true
		}
	default: // PosAny: any permutation covering the bound prefix
		switch {
		case sBound && oBound && !pBound:
			return OrderOSP, true
		case sBound:
			return OrderSPO, true
		case pBound:
			return OrderPOS, true
		case oBound:
			return OrderOSP, true
		default:
			return OrderSPO, true
		}
	}
}

// indexFor returns the base index for a scan order. Caller holds mu.
func (st *Store) indexFor(ord ScanOrder) []enc {
	switch ord {
	case OrderPOS:
		return st.pos
	case OrderOSP:
		return st.osp
	case OrderPSO:
		return st.pso
	default:
		return st.spo
	}
}

// rangeIn binary-searches idx (sorted in ord) for the contiguous range
// covering the bound positions (0 = wildcard). The mask must be one
// PermutationFor can map to ord — i.e. prefix-closed in ord's key order.
func rangeIn(ord ScanOrder, idx []enc, s, p, o ID) (int, int) {
	switch ord {
	case OrderPOS:
		if p == 0 {
			return 0, len(idx)
		}
		return rangePOS(idx, p, o)
	case OrderOSP:
		if o == 0 {
			return 0, len(idx)
		}
		return rangeOSP(idx, o, s)
	case OrderPSO:
		if p == 0 {
			return 0, len(idx)
		}
		return rangePSO(idx, p, s)
	default:
		if s == 0 {
			return 0, len(idx)
		}
		return rangeSPO(idx, s, p, o)
	}
}

// LookupTermID returns the dictionary ID for a term; ok=false means the term
// does not occur in the store, so no pattern mentioning it can match.
func (st *Store) LookupTermID(t rdf.Term) (ID, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.lookup(t)
}

// Terms batch-decodes IDs under one lock acquisition. Unknown IDs (including
// 0) decode to nil.
func (st *Store) Terms(ids []ID) []rdf.Term {
	out := make([]rdf.Term, len(ids))
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i, id := range ids {
		if id != 0 && int(id) < len(st.terms) {
			out[i] = st.terms[id]
		}
	}
	return out
}

// ForEachID streams matches in ID space under one consistent read view:
// base-index matches in the default permutation's sort order first, then
// not-yet-compacted delta matches in insertion order (the same sequence
// ForEach decodes). 0 = wildcard. fn must not touch the store (the read
// lock is held throughout, see ForEach).
func (st *Store) ForEachID(s, p, o ID, fn func(IDTriple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.forEachIDLocked(s, p, o, func(e enc) bool {
		return fn(IDTriple{e.s, e.p, e.o})
	})
}

// EstimateCountIDs is EstimateCount for an already-encoded pattern: the base
// range size plus matching delta entries, minus matching tombstones. The
// engine uses it to choose between merge-joining a range and probing per
// binding.
func (st *Store) EstimateCountIDs(s, p, o ID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ord, _ := PermutationFor(s != 0, p != 0, o != 0, PosAny)
	idx := st.indexFor(ord)
	lo, hi := rangeIn(ord, idx, s, p, o)
	n := hi - lo
	for _, e := range st.delta {
		if (s == 0 || e.s == s) && (p == 0 || e.p == p) && (o == 0 || e.o == o) {
			n++
		}
	}
	n -= st.countTombstonedLocked(s, p, o)
	if n < 0 {
		n = 0
	}
	return n
}

// countTombstonedLocked counts tombstones matching the bound positions
// (0 = wildcard). Every tombstone shadows exactly one entry counted by the
// base range or the delta pass (Delete only tombstones live triples, and a
// triple is never in both base and delta), so subtracting the matching
// tombstones makes the estimate exact up to in-flight mutations — without
// it, a delete-churned predicate looks as big as it was before the churn
// until the next compaction, and the planner picks probe joins and join
// orders sized for data that is no longer there. O(|deleted|), symmetric to
// the existing delta pass; both sets are compaction-bounded.
func (st *Store) countTombstonedLocked(s, p, o ID) int {
	dead := 0
	for e := range st.deleted {
		if (s == 0 || e.s == s) && (p == 0 || e.p == p) && (o == 0 || e.o == o) {
			dead++
		}
	}
	return dead
}

// IDRun is one materialized ID-space scan: the base-index matches sorted in
// Order, then the not-yet-compacted delta matches in insertion order.
// Concatenating Sorted and Tail reproduces exactly the sequence ForEachID
// emits for the same pattern (modulo mutations between pages; see ScanIDs).
type IDRun struct {
	Sorted []IDTriple
	Tail   []IDTriple
	Order  ScanOrder
}

// scanIDsPageSize is how many base-index entries one ScanIDs page copies per
// lock acquisition; a variable so tests can force multi-page scans on small
// stores.
var scanIDsPageSize = 1 << 16

// scanIDsBetweenPages, when non-nil, runs between ScanIDs pages with no lock
// held — a test hook for forcing compactions mid-scan.
var scanIDsBetweenPages func()

// scanIDsRestartAttempts bounds how many times a paged scan restarts after a
// layout-epoch change before falling back to one scan under a full lock.
const scanIDsRestartAttempts = 3

// ScanIDs materializes the matches for a bound mask (0 = wildcard) through
// the permutation PermutationFor selects for lead; ok=false means no
// permutation yields the requested lead order and the caller must probe
// instead. The copy is paged: the read lock is released between pages so a
// long scan never holds up writers, and a layout-epoch change (compaction
// reshuffles positions) restarts the scan; after scanIDsRestartAttempts
// restarts it degrades to a single-lock scan, which cannot be invalidated.
func (st *Store) ScanIDs(s, p, o ID, lead Position) (IDRun, bool) {
	ord, ok := PermutationFor(s != 0, p != 0, o != 0, lead)
	if !ok {
		return IDRun{}, false
	}
	for attempt := 0; attempt < scanIDsRestartAttempts; attempt++ {
		if run, ok := st.scanIDsPaged(s, p, o, ord); ok {
			return run, true
		}
	}
	// Writers keep compacting underneath the paged scan; take one read lock
	// for the whole range instead of restarting forever.
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.scanIDsLocked(s, p, o, ord), true
}

// scanIDsPaged copies the matching range page by page, dropping the lock
// between pages. ok=false reports a layout-epoch change invalidating the
// positional cursor.
func (st *Store) scanIDsPaged(s, p, o ID, ord ScanOrder) (IDRun, bool) {
	run := IDRun{Order: ord}
	pos := 0
	var epoch uint64
	first := true
	for {
		st.mu.RLock()
		if first {
			epoch = st.layout
			first = false
		} else if st.layout != epoch {
			st.mu.RUnlock()
			return IDRun{}, false
		}
		idx := st.indexFor(ord)
		lo, hi := rangeIn(ord, idx, s, p, o)
		n := hi - lo
		end := pos + scanIDsPageSize
		if end > n {
			end = n
		}
		if run.Sorted == nil && n > 0 {
			run.Sorted = make([]IDTriple, 0, n)
		}
		for i := lo + pos; i < lo+end; i++ {
			e := idx[i]
			if _, dead := st.deleted[e]; dead {
				continue
			}
			run.Sorted = append(run.Sorted, IDTriple{e.s, e.p, e.o})
		}
		pos = end
		if pos >= n {
			// The delta is captured under the same view as the final page,
			// exactly where ForEachID switches from base to delta.
			for _, e := range st.delta {
				if (s == 0 || e.s == s) && (p == 0 || e.p == p) && (o == 0 || e.o == o) {
					if _, dead := st.deleted[e]; dead {
						continue
					}
					run.Tail = append(run.Tail, IDTriple{e.s, e.p, e.o})
				}
			}
			st.mu.RUnlock()
			return run, true
		}
		st.mu.RUnlock()
		if hook := scanIDsBetweenPages; hook != nil {
			hook()
		}
	}
}

// ForEachIDPage streams up to max matching triples in ID space to fn,
// starting at scan position pos (0 starts a new scan), and returns the
// position the next page should resume from plus whether the scan is
// exhausted — the ID-space twin of ForEachPage. The read lock is held only
// for one page, so callers may do arbitrary work between pages. The cursor
// is positional over the PosAny permutation for the bound mask: positions in
// the base index are stable until a compaction, so callers must watch
// LayoutEpoch between pages and restart when it moves (delta appends don't
// shift the base, and the delta itself is append-only between compactions).
// fn returning false ends the scan (done=true). max < 1 returns immediately
// with done=false.
func (st *Store) ForEachIDPage(s, p, o ID, pos, max int, fn func(IDTriple) bool) (next int, done bool) {
	if max < 1 {
		return pos, false
	}
	st.scanPages.Add(1)
	st.mu.RLock()
	defer st.mu.RUnlock()
	ord, _ := PermutationFor(s != 0, p != 0, o != 0, PosAny)
	idx := st.indexFor(ord)
	lo, hi := rangeIn(ord, idx, s, p, o)
	n := hi - lo
	emitted := 0
	for i := lo + pos; i < hi; i++ {
		e := idx[i]
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(IDTriple{e.s, e.p, e.o}) {
			return i - lo + 1, true
		}
		emitted++
		if emitted >= max {
			return i - lo + 1, false
		}
	}
	dpos := pos - n
	if dpos < 0 {
		dpos = 0
	}
	for j := dpos; j < len(st.delta); j++ {
		e := st.delta[j]
		if (s != 0 && e.s != s) || (p != 0 && e.p != p) || (o != 0 && e.o != o) {
			continue
		}
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(IDTriple{e.s, e.p, e.o}) {
			return n + j + 1, true
		}
		emitted++
		if emitted >= max {
			return n + j + 1, false
		}
	}
	return n + len(st.delta), true
}

// Less reports whether a sorts before b in the order's (first, second,
// third) key sequence.
func (o ScanOrder) Less(a, b IDTriple) bool {
	ka0, ka1, ka2 := o.key(a)
	kb0, kb1, kb2 := o.key(b)
	if ka0 != kb0 {
		return ka0 < kb0
	}
	if ka1 != kb1 {
		return ka1 < kb1
	}
	return ka2 < kb2
}

func (o ScanOrder) key(t IDTriple) (ID, ID, ID) {
	switch o {
	case OrderPOS:
		return t.P, t.O, t.S
	case OrderOSP:
		return t.O, t.S, t.P
	case OrderPSO:
		return t.P, t.S, t.O
	default:
		return t.S, t.P, t.O
	}
}

// ForEachSorted streams the run in full Order-sorted sequence: the delta
// tail (captured in insertion order) is sorted and merged into the sorted
// base matches on the fly, so span-counting consumers see one globally
// grouped sequence even before the next compaction folds the delta in.
// Iteration stops early when fn returns false; the return value reports
// whether the full run was visited.
func (r IDRun) ForEachSorted(fn func(IDTriple) bool) bool {
	tail := r.Tail
	if len(tail) > 1 {
		tail = append([]IDTriple(nil), tail...)
		sort.Slice(tail, func(i, j int) bool { return r.Order.Less(tail[i], tail[j]) })
	}
	i, j := 0, 0
	for i < len(r.Sorted) && j < len(tail) {
		var t IDTriple
		if r.Order.Less(tail[j], r.Sorted[i]) {
			t = tail[j]
			j++
		} else {
			t = r.Sorted[i]
			i++
		}
		if !fn(t) {
			return false
		}
	}
	for ; i < len(r.Sorted); i++ {
		if !fn(r.Sorted[i]) {
			return false
		}
	}
	for ; j < len(tail); j++ {
		if !fn(tail[j]) {
			return false
		}
	}
	return true
}

// scanIDsLocked is the single-lock fallback. Caller holds mu.
func (st *Store) scanIDsLocked(s, p, o ID, ord ScanOrder) IDRun {
	run := IDRun{Order: ord}
	idx := st.indexFor(ord)
	lo, hi := rangeIn(ord, idx, s, p, o)
	if hi > lo {
		run.Sorted = make([]IDTriple, 0, hi-lo)
	}
	for i := lo; i < hi; i++ {
		e := idx[i]
		if _, dead := st.deleted[e]; dead {
			continue
		}
		run.Sorted = append(run.Sorted, IDTriple{e.s, e.p, e.o})
	}
	for _, e := range st.delta {
		if (s == 0 || e.s == s) && (p == 0 || e.p == p) && (o == 0 || e.o == o) {
			if _, dead := st.deleted[e]; dead {
				continue
			}
			run.Tail = append(run.Tail, IDTriple{e.s, e.p, e.o})
		}
	}
	return run
}
