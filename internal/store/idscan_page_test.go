package store

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// idPageStore is pageStore plus tombstones in both regions: one base triple
// and one delta triple deleted, so paged ID scans must skip dead entries on
// either side of the base/delta boundary.
func idPageStore(t *testing.T) *Store {
	t.Helper()
	st := pageStore(t)
	for _, i := range []int{5, 55} {
		tr := rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://p/e%d", i)),
			P: "http://p/v",
			O: rdf.NewInteger(int64(i)),
		}
		if !st.Delete(tr) {
			t.Fatalf("Delete(e%d) = false, want true", i)
		}
	}
	return st
}

// collectIDPages drains a mask through ForEachIDPage with the given page
// size, resuming from the returned cursor until the scan reports done.
func collectIDPages(t *testing.T, st *Store, s, p, o ID, pageSize int) []IDTriple {
	t.Helper()
	var got []IDTriple
	pos := 0
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("ForEachIDPage never reported done")
		}
		next, done := st.ForEachIDPage(s, p, o, pos, pageSize, func(tr IDTriple) bool {
			got = append(got, tr)
			return true
		})
		if done {
			return got
		}
		if next < pos {
			t.Fatalf("cursor moved backwards: %d -> %d", pos, next)
		}
		pos = next
	}
}

func TestForEachIDPageEquivalence(t *testing.T) {
	st := idPageStore(t)
	sid, ok := st.LookupTermID(rdf.IRI("http://p/e3"))
	if !ok {
		t.Fatal("e3 not in dictionary")
	}
	pid, ok := st.LookupTermID(rdf.IRI("http://p/v"))
	if !ok {
		t.Fatal("predicate not in dictionary")
	}
	masks := []struct {
		name    string
		s, p, o ID
	}{
		{"full", 0, 0, 0},
		{"subject", sid, 0, 0},
		{"predicate", 0, pid, 0},
	}
	for _, m := range masks {
		var want []IDTriple
		st.ForEachID(m.s, m.p, m.o, func(tr IDTriple) bool {
			want = append(want, tr)
			return true
		})
		if len(want) == 0 {
			t.Fatalf("%s: empty oracle", m.name)
		}
		for _, size := range []int{1, 3, 7, 64, 1000} {
			got := collectIDPages(t, st, m.s, m.p, m.o, size)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/page=%d: got %d triples, want %d (sequences differ)",
					m.name, size, len(got), len(want))
			}
		}
	}
}

func TestForEachIDPageEarlyStopResumes(t *testing.T) {
	st := idPageStore(t)
	var want []IDTriple
	st.ForEachID(0, 0, 0, func(tr IDTriple) bool {
		want = append(want, tr)
		return true
	})

	// Stop mid-page: the scan reports done, but the cursor it returns is a
	// valid resume point that skips everything already visited.
	var head []IDTriple
	next, done := st.ForEachIDPage(0, 0, 0, 0, 1000, func(tr IDTriple) bool {
		head = append(head, tr)
		return len(head) < 3
	})
	if !done {
		t.Fatal("fn returning false should report done")
	}
	if len(head) != 3 {
		t.Fatalf("visited %d before stopping, want 3", len(head))
	}
	var tail []IDTriple
	pos := next
	for {
		n, d := st.ForEachIDPage(0, 0, 0, pos, 16, func(tr IDTriple) bool {
			tail = append(tail, tr)
			return true
		})
		if d {
			break
		}
		pos = n
	}
	if got := append(head, tail...); !reflect.DeepEqual(got, want) {
		t.Fatalf("stop+resume visited %d triples, want %d with identical order", len(got), len(want))
	}
}

func TestForEachIDPageMaxBelowOne(t *testing.T) {
	st := idPageStore(t)
	calls := 0
	next, done := st.ForEachIDPage(0, 0, 0, 7, 0, func(IDTriple) bool {
		calls++
		return true
	})
	if calls != 0 || done || next != 7 {
		t.Fatalf("max=0: calls=%d next=%d done=%v, want 0/7/false", calls, next, done)
	}
}

func TestIDRunForEachSortedMergesUnsortedTail(t *testing.T) {
	var triples []rdf.Triple
	for i := 0; i < 20; i++ {
		triples = append(triples, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://p/e%d", i)),
			P: "http://p/v",
			O: rdf.NewInteger(int64(i)),
		})
	}
	st, err := Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	// Descending-order adds: the delta tail's dictionary IDs arrive in
	// reverse of the permutation order, so the merge actually has to work.
	for i := 29; i >= 20; i-- {
		if err := st.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://p/e%d", i)),
			P: "http://p/v",
			O: rdf.NewInteger(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	pid, _ := st.LookupTermID(rdf.IRI("http://p/v"))
	run, ok := st.ScanIDs(0, pid, 0, PosAny)
	if !ok {
		t.Fatal("ScanIDs not ok")
	}
	if len(run.Tail) != 10 {
		t.Fatalf("delta tail has %d entries, want 10", len(run.Tail))
	}
	var merged []IDTriple
	if !run.ForEachSorted(func(tr IDTriple) bool {
		merged = append(merged, tr)
		return true
	}) {
		t.Fatal("full iteration reported early stop")
	}
	if len(merged) != 30 {
		t.Fatalf("merged %d triples, want 30", len(merged))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return run.Order.Less(merged[i], merged[j]) }) {
		t.Fatalf("ForEachSorted emitted out-of-order sequence in %v", run.Order)
	}
	// Same multiset as the live scan.
	var live []IDTriple
	st.ForEachID(0, pid, 0, func(tr IDTriple) bool {
		live = append(live, tr)
		return true
	})
	sort.Slice(live, func(i, j int) bool { return run.Order.Less(live[i], live[j]) })
	if !reflect.DeepEqual(merged, live) {
		t.Fatal("merged run disagrees with ForEachID content")
	}
	// Early stop propagates.
	n := 0
	if run.ForEachSorted(func(IDTriple) bool { n++; return n < 5 }) {
		t.Fatal("early stop should report false")
	}
	if n != 5 {
		t.Fatalf("stopped after %d, want 5", n)
	}
}

// TestComputeStatsDifferential replays the stats aggregation in term space —
// the pre-refactor algorithm — and requires the ID-space ComputeStats to
// produce the identical result over a store with base, delta, and tombstones.
func TestComputeStatsDifferential(t *testing.T) {
	// Inline entity dataset (internal/gen would be an import cycle here):
	// classes, labels, two categorical properties, numerics, and links.
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		e := rdf.IRI(fmt.Sprintf("http://x/entity%d", i))
		triples = append(triples,
			rdf.Triple{S: e, P: rdf.RDFType, O: rdf.IRI(fmt.Sprintf("http://x/Class%d", i%3))},
			rdf.Triple{S: e, P: rdf.RDFSLabel, O: rdf.NewLiteral(fmt.Sprintf("entity %d", i))},
			rdf.Triple{S: e, P: "http://x/cat0", O: rdf.NewLiteral(fmt.Sprintf("category-%d", i%5))},
			rdf.Triple{S: e, P: "http://x/cat1", O: rdf.NewLiteral(fmt.Sprintf("category-%d", (i/3)%5))},
			rdf.Triple{S: e, P: "http://x/num", O: rdf.NewDouble(float64(i) * 1.5)},
			rdf.Triple{S: e, P: "http://x/link", O: rdf.IRI(fmt.Sprintf("http://x/entity%d", (i*7)%200))},
		)
	}
	st, err := Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	// Delta adds and deletes in both regions.
	for i := 0; i < 7; i++ {
		if err := st.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://x/extra%d", i)),
			P: "http://x/p",
			O: rdf.NewInteger(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Delete(triples[0]) || !st.Delete(triples[len(triples)-1]) {
		t.Fatal("seed deletes failed")
	}
	if !st.Delete(rdf.Triple{S: rdf.IRI("http://x/extra3"), P: "http://x/p", O: rdf.NewInteger(3)}) {
		t.Fatal("delta delete failed")
	}

	type agg struct {
		triples int
		subj    map[rdf.Term]struct{}
		obj     map[rdf.Term]int
	}
	per := map[rdf.IRI]*agg{}
	classes := map[rdf.Term]int{}
	total := 0
	st.ForEach(Pattern{}, func(tr rdf.Triple) bool {
		total++
		a := per[tr.P]
		if a == nil {
			a = &agg{subj: map[rdf.Term]struct{}{}, obj: map[rdf.Term]int{}}
			per[tr.P] = a
		}
		a.triples++
		a.subj[tr.S] = struct{}{}
		a.obj[tr.O]++
		if tr.P == rdf.RDFType {
			classes[tr.O]++
		}
		return true
	})
	want := Stats{Triples: total, Terms: st.NumTerms(), Classes: classes}
	for p, a := range per {
		lits := 0
		for o, n := range a.obj {
			if o.Kind() == rdf.KindLiteral {
				lits += n
			}
		}
		want.Predicates = append(want.Predicates, PredicateStat{
			Predicate:        p,
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
			LiteralObjects:   lits,
		})
	}
	sort.Slice(want.Predicates, func(i, j int) bool {
		if want.Predicates[i].Triples != want.Predicates[j].Triples {
			return want.Predicates[i].Triples > want.Predicates[j].Triples
		}
		return want.Predicates[i].Predicate < want.Predicates[j].Predicate
	})

	got := st.ComputeStats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ComputeStats diverges from term-space oracle:\n got %+v\nwant %+v", got, want)
	}
}
