package store

import (
	"fmt"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// TestPermutationFor pins the full selection table: every bound/unbound mask
// crossed with every lead preference, including the two masks no permutation
// can serve in lead order.
func TestPermutationFor(t *testing.T) {
	cases := []struct {
		s, p, o bool
		lead    Position
		want    ScanOrder
		ok      bool
	}{
		// PosAny: the default permutation per mask; always available.
		{false, false, false, PosAny, OrderSPO, true},
		{true, false, false, PosAny, OrderSPO, true},
		{false, true, false, PosAny, OrderPOS, true},
		{false, false, true, PosAny, OrderOSP, true},
		{true, true, false, PosAny, OrderSPO, true},
		{true, false, true, PosAny, OrderOSP, true},
		{false, true, true, PosAny, OrderPOS, true},
		{true, true, true, PosAny, OrderSPO, true},

		// Lead S: available for every mask with S unbound.
		{false, false, false, PosS, OrderSPO, true},
		{false, true, false, PosS, OrderPSO, true},
		{false, false, true, PosS, OrderOSP, true},
		{false, true, true, PosS, OrderPOS, true},
		{true, false, false, PosS, 0, false}, // lead must be unbound
		{true, true, true, PosS, 0, false},

		// Lead P.
		{false, false, false, PosP, OrderPSO, true},
		{true, false, false, PosP, OrderSPO, true},
		{true, false, true, PosP, OrderOSP, true},
		{false, false, true, PosP, 0, false}, // would need OPS
		{false, true, false, PosP, 0, false}, // lead must be unbound

		// Lead O.
		{false, false, false, PosO, OrderOSP, true},
		{false, true, false, PosO, OrderPOS, true},
		{true, true, false, PosO, OrderSPO, true},
		{true, false, false, PosO, 0, false}, // would need SOP
		{false, false, true, PosO, 0, false}, // lead must be unbound
	}
	for _, c := range cases {
		got, ok := PermutationFor(c.s, c.p, c.o, c.lead)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("PermutationFor(s=%v p=%v o=%v lead=%v) = %v,%v; want %v,%v",
				c.s, c.p, c.o, c.lead, got, ok, c.want, c.ok)
		}
	}
}

// TestScanIDsMatchesForEachID checks that Sorted+Tail reproduces exactly the
// ForEachID sequence for every mask shape, across a store with both a sorted
// base and a pending delta.
func TestScanIDsMatchesForEachID(t *testing.T) {
	st := New()
	var batch []rdf.Triple
	for i := 0; i < 50; i++ {
		batch = append(batch, tr(fmt.Sprint("s", i%10), fmt.Sprint("p", i%3), fmt.Sprint("o", i%7)))
	}
	if err := st.AddAll(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	// Leave some triples in the delta.
	for i := 0; i < 9; i++ {
		if err := st.Add(tr(fmt.Sprint("s", i%4), "p1", fmt.Sprint("d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// And a tombstone.
	st.Delete(tr("s0", "p0", "o0"))

	pid, _ := st.LookupTermID(iri("p1"))
	sid, _ := st.LookupTermID(iri("s1"))
	oid, _ := st.LookupTermID(iri("o1"))
	masks := []struct {
		s, p, o ID
		lead    Position
	}{
		{0, 0, 0, PosAny},
		{0, 0, 0, PosS},
		{0, 0, 0, PosP},
		{0, 0, 0, PosO},
		{sid, 0, 0, PosAny},
		{sid, 0, 0, PosP},
		{0, pid, 0, PosAny},
		{0, pid, 0, PosS},
		{0, 0, oid, PosAny},
		{0, 0, oid, PosS},
		{sid, pid, 0, PosO},
		{0, pid, oid, PosS},
		{sid, 0, oid, PosP},
		{sid, pid, oid, PosAny},
	}
	for _, m := range masks {
		run, ok := st.ScanIDs(m.s, m.p, m.o, m.lead)
		if !ok {
			t.Fatalf("ScanIDs(%d,%d,%d,%v) declined", m.s, m.p, m.o, m.lead)
		}
		got := append(append([]IDTriple{}, run.Sorted...), run.Tail...)
		// ForEachID follows the PosAny permutation, so orders differ when
		// the lead forces another index; compare as sets plus verify the
		// sorted half is actually sorted in run.Order.
		want := map[IDTriple]int{}
		st.ForEachID(m.s, m.p, m.o, func(tr IDTriple) bool {
			want[tr]++
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("mask %+v: got %d triples, want %d", m, len(got), len(want))
		}
		for _, tr := range got {
			if want[tr] == 0 {
				t.Fatalf("mask %+v: unexpected triple %v", m, tr)
			}
			want[tr]--
		}
		for i := 1; i < len(run.Sorted); i++ {
			if !lessInOrder(run.Order, run.Sorted[i-1], run.Sorted[i]) {
				t.Fatalf("mask %+v: Sorted not strictly %v-ordered at %d", m, run.Order, i)
			}
		}
		if m.lead == PosAny {
			// PosAny must additionally reproduce ForEachID's exact order.
			var seq []IDTriple
			st.ForEachID(m.s, m.p, m.o, func(tr IDTriple) bool {
				seq = append(seq, tr)
				return true
			})
			for i := range seq {
				if got[i] != seq[i] {
					t.Fatalf("mask %+v: order diverges at %d: %v vs %v", m, i, got[i], seq[i])
				}
			}
		}
	}
}

func lessInOrder(ord ScanOrder, a, b IDTriple) bool {
	ea, eb := enc{a.S, a.P, a.O}, enc{b.S, b.P, b.O}
	switch ord {
	case OrderPOS:
		return lessPOS(ea, eb)
	case OrderOSP:
		return lessOSP(ea, eb)
	case OrderPSO:
		return cmpPSO(ea, eb) < 0
	default:
		return lessSPO(ea, eb)
	}
}

// TestScanIDsEpochRestart forces a compaction between pages: the scan must
// notice the layout-epoch bump, restart, and still produce the right result;
// when every attempt is invalidated it must fall back to the single-lock scan.
func TestScanIDsEpochRestart(t *testing.T) {
	st := New()
	var batch []rdf.Triple
	for i := 0; i < 300; i++ {
		batch = append(batch, tr(fmt.Sprint("s", i), "p", fmt.Sprint("o", i%5)))
	}
	if err := st.AddAll(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	pid, _ := st.LookupTermID(iri("p"))

	oldPage := scanIDsPageSize
	scanIDsPageSize = 64
	defer func() { scanIDsPageSize = oldPage; scanIDsBetweenPages = nil }()

	// One mid-scan compaction: restart then succeed.
	bumps := 0
	scanIDsBetweenPages = func() {
		if bumps == 0 {
			bumps++
			st.Add(tr("extra", "p", "oX"))
			st.Compact()
		}
	}
	run, ok := st.ScanIDs(0, pid, 0, PosS)
	if !ok {
		t.Fatal("ScanIDs declined")
	}
	if got := len(run.Sorted) + len(run.Tail); got != 301 {
		t.Fatalf("after one epoch bump: got %d triples, want 301", got)
	}
	if bumps != 1 {
		t.Fatalf("hook ran %d times, want 1", bumps)
	}

	// Perpetual compactions: every paged attempt is invalidated, the
	// single-lock fallback must still answer (the hook runs lock-free, so
	// the fallback scan itself cannot trigger it).
	n := 302
	scanIDsBetweenPages = func() {
		st.Add(tr(fmt.Sprint("extra", n), "p", "oX"))
		st.Compact()
		n++
	}
	run, ok = st.ScanIDs(0, pid, 0, PosS)
	if !ok {
		t.Fatal("ScanIDs declined under perpetual compaction")
	}
	if got := len(run.Sorted) + len(run.Tail); got < 301 {
		t.Fatalf("fallback scan lost triples: got %d, want >= 301", got)
	}
	for i := 1; i < len(run.Sorted); i++ {
		if !lessInOrder(run.Order, run.Sorted[i-1], run.Sorted[i]) {
			t.Fatalf("fallback Sorted not ordered at %d", i)
		}
	}
}

// TestScanIDsConcurrentWriters hammers ScanIDs from readers while writers
// add, delete, and compact — primarily a race-detector target for the paged
// scan's lock discipline.
func TestScanIDsConcurrentWriters(t *testing.T) {
	st := New()
	var batch []rdf.Triple
	for i := 0; i < 2000; i++ {
		batch = append(batch, tr(fmt.Sprint("s", i), fmt.Sprint("p", i%4), fmt.Sprint("o", i%100)))
	}
	if err := st.AddAll(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	pid, _ := st.LookupTermID(iri("p1"))

	oldPage := scanIDsPageSize
	scanIDsPageSize = 128
	defer func() { scanIDsPageSize = oldPage }()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tp := tr(fmt.Sprint("w", w, "-", i), "p1", "oW")
				st.Add(tp)
				if i%3 == 0 {
					st.Delete(tp)
				}
				if i%50 == 0 {
					st.Compact()
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				run, ok := st.ScanIDs(0, pid, 0, PosS)
				if !ok {
					t.Error("ScanIDs declined")
					return
				}
				for j := 1; j < len(run.Sorted); j++ {
					if !lessInOrder(run.Order, run.Sorted[j-1], run.Sorted[j]) {
						t.Error("unsorted page result")
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestEstimateCountBoundObject pins the satellite regression: a bound-object
// pattern must be costed by its exact OSP range, not the whole store.
func TestEstimateCountBoundObject(t *testing.T) {
	st := New()
	var batch []rdf.Triple
	for i := 0; i < 1000; i++ {
		batch = append(batch, tr(fmt.Sprint("s", i), "p", fmt.Sprint("o", i%100)))
	}
	// One rare object.
	batch = append(batch, tr("needle", "p", "rare"))
	if err := st.AddAll(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()

	if got := st.EstimateCount(Pattern{O: iri("rare")}); got != 1 {
		t.Fatalf("bound-object estimate = %d, want 1 (whole store is %d)", got, st.Len())
	}
	if got := st.EstimateCount(Pattern{P: iri("p"), O: iri("rare")}); got != 1 {
		t.Fatalf("bound-p+o estimate = %d, want 1", got)
	}
	// And with the match still in the delta.
	if err := st.Add(tr("fresh", "p", "rare2")); err != nil {
		t.Fatal(err)
	}
	if got := st.EstimateCount(Pattern{O: iri("rare2")}); got != 1 {
		t.Fatalf("delta bound-object estimate = %d, want 1", got)
	}
}

// TestTermsBatchDecode checks the batch decoder, including unknown IDs.
func TestTermsBatchDecode(t *testing.T) {
	st := New()
	if err := st.Add(tr("s", "p", "o")); err != nil {
		t.Fatal(err)
	}
	sid, _ := st.LookupTermID(iri("s"))
	out := st.Terms([]ID{sid, 0, 9999})
	if out[0] != rdf.Term(iri("s")) || out[1] != nil || out[2] != nil {
		t.Fatalf("Terms = %v", out)
	}
}
