package store

import (
	"github.com/lodviz/lodviz/internal/rdf"
)

// Pattern is a triple pattern; nil fields are wildcards.
type Pattern struct {
	S rdf.Term
	P rdf.Term
	O rdf.Term
}

// Match returns all triples matching the pattern. For exploratory front-ends
// that need streaming, use ForEach; Match materializes the result.
func (st *Store) Match(p Pattern) []rdf.Triple {
	var out []rdf.Triple
	st.ForEach(p, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (st *Store) Count(p Pattern) int {
	n := 0
	st.ForEach(p, func(rdf.Triple) bool { n++; return true })
	return n
}

// ForEach streams triples matching the pattern to fn. Iteration stops early
// when fn returns false. The store must not be mutated from inside fn, and
// fn must not scan the store again: the read lock is held for the whole
// iteration, and on a sync.RWMutex a nested RLock behind a queued writer
// deadlocks. Long-running consumers should page with ForEachPage instead.
func (st *Store) ForEach(p Pattern, fn func(rdf.Triple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()

	sid, pid, oid, ok := st.resolvePatternLocked(p)
	if !ok {
		return
	}
	st.forEachIDLocked(sid, pid, oid, func(e enc) bool {
		return fn(rdf.Triple{
			S: st.terms[e.s],
			P: st.terms[e.p].(rdf.IRI),
			O: st.terms[e.o],
		})
	})
}

// ForEachPage streams up to max matching triples to fn, starting at scan
// position pos (0 starts a new scan), and returns the position the next
// page should resume from plus whether the scan is exhausted. The read
// lock is held only for the duration of one page, so callers may do
// arbitrary work between pages — evaluate joins, write to the network,
// even mutate the store — without holding up writers. The cursor is
// positional: a mutation between pages may shift positions, so a paged
// scan observes the live store rather than one snapshot (callers needing
// snapshot isolation use ForEach). fn returning false ends the scan
// (done=true). max < 1 returns immediately with done=false.
func (st *Store) ForEachPage(p Pattern, pos, max int, fn func(rdf.Triple) bool) (next int, done bool) {
	if max < 1 {
		return pos, false
	}
	st.scanPages.Add(1)
	st.mu.RLock()
	defer st.mu.RUnlock()

	sid, pid, oid, ok := st.resolvePatternLocked(p)
	if !ok {
		return pos, true
	}
	base, lo, hi := st.scanRangeLocked(sid, pid, oid)
	n := hi - lo
	emitted := 0
	for i := lo + pos; i < hi; i++ {
		e := base[i]
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(rdf.Triple{S: st.terms[e.s], P: st.terms[e.p].(rdf.IRI), O: st.terms[e.o]}) {
			return i - lo + 1, true
		}
		emitted++
		if emitted >= max {
			return i - lo + 1, false
		}
	}
	dpos := pos - n
	if dpos < 0 {
		dpos = 0
	}
	for j := dpos; j < len(st.delta); j++ {
		e := st.delta[j]
		if sid != 0 && e.s != sid {
			continue
		}
		if pid != 0 && e.p != pid {
			continue
		}
		if oid != 0 && e.o != oid {
			continue
		}
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(rdf.Triple{S: st.terms[e.s], P: st.terms[e.p].(rdf.IRI), O: st.terms[e.o]}) {
			return n + j + 1, true
		}
		emitted++
		if emitted >= max {
			return n + j + 1, false
		}
	}
	return n + len(st.delta), true
}

// resolvePatternLocked interns the pattern's constant terms to IDs;
// ok=false means a constant is absent from the dictionary and nothing can
// match. Caller holds mu.
func (st *Store) resolvePatternLocked(p Pattern) (s, pr, o ID, ok bool) {
	if p.S != nil {
		if s, ok = st.lookup(p.S); !ok {
			return 0, 0, 0, false
		}
	}
	if p.P != nil {
		if pr, ok = st.lookup(p.P); !ok {
			return 0, 0, 0, false
		}
	}
	if p.O != nil {
		if o, ok = st.lookup(p.O); !ok {
			return 0, 0, 0, false
		}
	}
	return s, pr, o, true
}

// scanRangeLocked picks the permutation index and the contiguous range
// covering the bound positions (0 = wildcard), via the same selection table
// (PermutationFor) the ID-space scan API exposes. Caller holds mu.
func (st *Store) scanRangeLocked(s, p, o ID) (base []enc, lo, hi int) {
	ord, _ := PermutationFor(s != 0, p != 0, o != 0, PosAny)
	base = st.indexFor(ord)
	lo, hi = rangeIn(ord, base, s, p, o)
	return base, lo, hi
}

// forEachIDLocked drives the index scan in ID space (0 = wildcard).
func (st *Store) forEachIDLocked(s, p, o ID, fn func(enc) bool) {
	base, lo, hi := st.scanRangeLocked(s, p, o)
	for i := lo; i < hi; i++ {
		e := base[i]
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(e) {
			return
		}
	}
	for _, e := range st.delta {
		if s != 0 && e.s != s {
			continue
		}
		if p != 0 && e.p != p {
			continue
		}
		if o != 0 && e.o != o {
			continue
		}
		if _, dead := st.deleted[e]; dead {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Subjects returns the distinct subjects matching a (p, o) restriction
// (either may be nil).
func (st *Store) Subjects(p, o rdf.Term) []rdf.Term {
	seen := map[rdf.Term]struct{}{}
	var out []rdf.Term
	st.ForEach(Pattern{P: p, O: o}, func(t rdf.Triple) bool {
		if _, dup := seen[t.S]; !dup {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// Objects returns the distinct objects for a (s, p) restriction (either may
// be nil).
func (st *Store) Objects(s, p rdf.Term) []rdf.Term {
	seen := map[rdf.Term]struct{}{}
	var out []rdf.Term
	st.ForEach(Pattern{S: s, P: p}, func(t rdf.Triple) bool {
		if _, dup := seen[t.O]; !dup {
			seen[t.O] = struct{}{}
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Predicates returns the distinct predicates in the store.
func (st *Store) Predicates() []rdf.IRI {
	seen := map[rdf.IRI]struct{}{}
	var out []rdf.IRI
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		if _, dup := seen[t.P]; !dup {
			seen[t.P] = struct{}{}
			out = append(out, t.P)
		}
		return true
	})
	return out
}

// Triples returns every live triple (mainly for tests and export).
func (st *Store) Triples() []rdf.Triple {
	return st.Match(Pattern{})
}

// EstimateCount returns an estimate of the triples matching the pattern:
// the base-index range size (one O(log n) binary search) plus the delta
// entries that actually match the bound positions, minus the tombstones
// that match them. Delta and tombstone sets are both compaction-bounded, so
// the two linear passes are O(1) in practice. Subtracting tombstones
// matters for the same reason counting the delta does: join ordering
// tolerates being a few triples off but not 1000× off, and a delete burst
// that tombstones most of a predicate would otherwise leave the planner
// ordering joins — and choosing merge-vs-probe strategies — against
// pre-delete sizes until the next compaction.
func (st *Store) EstimateCount(p Pattern) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var sid, pid, oid ID
	var ok bool
	if p.S != nil {
		if sid, ok = st.lookup(p.S); !ok {
			return 0
		}
	}
	if p.P != nil {
		if pid, ok = st.lookup(p.P); !ok {
			return 0
		}
	}
	if p.O != nil {
		if oid, ok = st.lookup(p.O); !ok {
			return 0
		}
	}
	// Same permutation-selection table as the scans: a bound-object pattern
	// counts its exact OSP range, never the whole store.
	ord, _ := PermutationFor(sid != 0, pid != 0, oid != 0, PosAny)
	idx := st.indexFor(ord)
	lo, hi := rangeIn(ord, idx, sid, pid, oid)
	n := hi - lo
	for _, e := range st.delta {
		if (sid == 0 || e.s == sid) && (pid == 0 || e.p == pid) && (oid == 0 || e.o == oid) {
			n++
		}
	}
	n -= st.countTombstonedLocked(sid, pid, oid)
	if n < 0 {
		n = 0
	}
	return n
}
