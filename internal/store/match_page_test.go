package store

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// pageStore builds a store with both a sorted base and a live delta
// overlay, so paging is exercised across the base/delta boundary.
func pageStore(t *testing.T) *Store {
	t.Helper()
	var triples []rdf.Triple
	for i := 0; i < 50; i++ {
		triples = append(triples, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://p/e%d", i)),
			P: "http://p/v",
			O: rdf.NewInteger(int64(i)),
		})
	}
	st, err := Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	// Post-load writes land in the delta until the next compaction.
	for i := 50; i < 60; i++ {
		if err := st.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://p/e%d", i)),
			P: "http://p/v",
			O: rdf.NewInteger(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestForEachPageEquivalence: paging through a pattern at any page size
// yields exactly ForEach's triples in ForEach's order, including the delta
// overlay.
func TestForEachPageEquivalence(t *testing.T) {
	st := pageStore(t)
	for _, pat := range []Pattern{
		{},
		{P: rdf.IRI("http://p/v")},
		{S: rdf.IRI("http://p/e55")},
		{S: rdf.IRI("http://p/nosuch")},
	} {
		var want []rdf.Triple
		st.ForEach(pat, func(tr rdf.Triple) bool {
			want = append(want, tr)
			return true
		})
		for _, pageSize := range []int{1, 3, 7, 1000} {
			var got []rdf.Triple
			pos := 0
			for {
				next, done := st.ForEachPage(pat, pos, pageSize, func(tr rdf.Triple) bool {
					got = append(got, tr)
					return true
				})
				if !done && next <= pos {
					t.Fatalf("page made no progress: pos %d -> %d", pos, next)
				}
				pos = next
				if done {
					break
				}
			}
			if len(got) != len(want) {
				t.Fatalf("pattern %+v page %d: got %d triples, want %d", pat, pageSize, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pattern %+v page %d: triple %d = %v, want %v", pat, pageSize, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForEachPageStop: fn returning false ends the scan (done=true), and a
// resumed cursor skips what was already seen.
func TestForEachPageStop(t *testing.T) {
	st := pageStore(t)
	n := 0
	_, done := st.ForEachPage(Pattern{}, 0, 100, func(rdf.Triple) bool {
		n++
		return n < 5
	})
	if !done || n != 5 {
		t.Fatalf("stop: done=%v after %d triples, want done after 5", done, n)
	}

	// Resume semantics: two half-scans equal one full scan.
	var firstHalf, rest []rdf.Triple
	mid, done := st.ForEachPage(Pattern{}, 0, 30, func(tr rdf.Triple) bool {
		firstHalf = append(firstHalf, tr)
		return true
	})
	if done {
		t.Fatal("60 triples should not be exhausted after 30")
	}
	for pos := mid; ; {
		next, d := st.ForEachPage(Pattern{}, pos, 13, func(tr rdf.Triple) bool {
			rest = append(rest, tr)
			return true
		})
		pos = next
		if d {
			break
		}
	}
	if got := len(firstHalf) + len(rest); got != st.Len() {
		t.Fatalf("split scan saw %d triples, want %d", got, st.Len())
	}
}

// TestLayoutEpoch: delta appends and deletes leave scan positions (and the
// epoch) alone; compaction and bulk rebuilds advance it.
func TestLayoutEpoch(t *testing.T) {
	st := pageStore(t) // sorted base + 10 pending delta entries
	e0 := st.LayoutEpoch()
	if err := st.Add(rdf.Triple{S: rdf.IRI("http://p/extra"), P: "http://p/v", O: rdf.NewInteger(99)}); err != nil {
		t.Fatal(err)
	}
	if st.LayoutEpoch() != e0 {
		t.Fatal("plain delta append must not advance the layout epoch")
	}
	if !st.Delete(rdf.Triple{S: rdf.IRI("http://p/extra"), P: "http://p/v", O: rdf.NewInteger(99)}) {
		t.Fatal("delete failed")
	}
	if st.LayoutEpoch() != e0 {
		t.Fatal("tombstone delete must not advance the layout epoch")
	}
	st.Compact()
	e1 := st.LayoutEpoch()
	if e1 == e0 {
		t.Fatal("compaction must advance the layout epoch")
	}
	st.Compact() // nothing pending: no reshuffle
	if st.LayoutEpoch() != e1 {
		t.Fatal("no-op compaction must not advance the layout epoch")
	}
}

// TestForEachPageMaxZero: a non-positive page size is a no-op that keeps
// the cursor put.
func TestForEachPageMaxZero(t *testing.T) {
	st := pageStore(t)
	next, done := st.ForEachPage(Pattern{}, 7, 0, func(rdf.Triple) bool {
		t.Fatal("fn must not run")
		return false
	})
	if next != 7 || done {
		t.Fatalf("got next=%d done=%v, want 7,false", next, done)
	}
}
