package store

// Instrumentation snapshot. The store keeps no metric handles of its own —
// it stays dependency-free — and instead exposes one cheap snapshot the
// observability layer polls at scrape time (obs.GaugeFunc/CounterFunc in
// the server wire the fields to metric families).

// Observed is a point-in-time instrumentation view of the store.
type Observed struct {
	// Triples is the live triple count; Terms the dictionary size.
	Triples int
	Terms   int
	// Delta counts inserted triples not yet merged into the sorted
	// indexes; Tombstones counts deletes awaiting physical removal.
	Delta      int
	Tombstones int
	// Generation counts content mutations, LayoutEpoch physical index
	// reshuffles (see the Store fields of the same names).
	Generation  uint64
	LayoutEpoch uint64
	// ScanPages counts ForEachPage/ForEachIDPage calls since startup —
	// each call pulls one page under the read lock.
	ScanPages uint64
}

// Observe returns the store's instrumentation snapshot.
func (st *Store) Observe() Observed {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Observed{
		Triples:     st.size,
		Terms:       len(st.terms) - 1,
		Delta:       len(st.delta),
		Tombstones:  len(st.deleted),
		Generation:  st.gen,
		LayoutEpoch: st.layout,
		ScanPages:   st.scanPages.Load(),
	}
}
