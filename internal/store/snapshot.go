package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/snapshot"
)

// WriteSnapshot serializes the store to w in the versioned, checksummed
// snapshot format (see internal/snapshot): the full term dictionary, the
// sorted SPO index, and (format v2) the per-predicate cardinality table so a
// restored store starts with a warm query planner.
//
// The snapshot is a consistent point-in-time image: pending deltas and
// tombstones are compacted first, then the dictionary, index, and
// cardinalities are captured under the lock and serialized outside it
// (merges never mutate a published index slice in place, so concurrent
// writers cannot corrupt the capture).
func (st *Store) WriteSnapshot(w io.Writer) error {
	st.mu.Lock()
	st.mergeLocked()
	terms := st.terms[:len(st.terms):len(st.terms)]
	spo := st.spo[:len(st.spo):len(st.spo)]
	if st.cards == nil {
		st.cards = st.computeCardinalitiesLocked()
	}
	stats := make([]snapshot.PredStat, 0, len(st.cards))
	for p, c := range st.cards {
		pid, ok := st.dict[rdf.Term(p)]
		if !ok {
			continue
		}
		stats = append(stats, snapshot.PredStat{
			Pred:             uint32(pid),
			Triples:          uint64(c.Triples),
			DistinctSubjects: uint64(c.DistinctSubjects),
			DistinctObjects:  uint64(c.DistinctObjects),
		})
	}
	st.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Pred < stats[j].Pred })

	sw, err := snapshot.NewWriter(w, len(terms)-1, len(spo))
	if err != nil {
		return err
	}
	for _, t := range terms[1:] {
		if err := sw.Term(t); err != nil {
			return err
		}
	}
	for _, e := range spo {
		if err := sw.Triple(uint32(e.s), uint32(e.p), uint32(e.o)); err != nil {
			return err
		}
	}
	if err := sw.Stats(stats); err != nil {
		return err
	}
	return sw.Close()
}

// ReadSnapshot reconstructs a store from a snapshot stream, verifying its
// checksum. The restored store answers queries identically to the one that
// wrote the snapshot; its generation restarts (non-zero iff it holds
// triples), like a freshly loaded store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return nil, err
	}
	s := New()
	numTerms := sr.NumTerms()
	numTriples := sr.NumTriples()
	// Header counts are unverified until the checksum at the end of the
	// stream, so they must not drive allocations directly: a corrupt header
	// claiming 2^60 terms would abort the process before the checksum ever
	// ran. IDs are uint32, which bounds any legitimate count; capacity
	// hints are additionally capped and grown by append, so a lying header
	// runs out of input (ErrCorrupt) instead of memory.
	const maxCount = 1<<32 - 2
	if numTerms > maxCount || numTriples > maxCount {
		return nil, fmt.Errorf("%w: header claims %d terms / %d triples", snapshot.ErrCorrupt, numTerms, numTriples)
	}
	const maxHint = 1 << 20
	s.terms = make([]rdf.Term, 1, min(numTerms+1, maxHint))
	s.dict = make(map[rdf.Term]ID, min(numTerms, maxHint))
	for i := uint64(0); i < numTerms; i++ {
		t, err := sr.Term()
		if err != nil {
			return nil, err
		}
		if _, dup := s.dict[t]; dup {
			return nil, fmt.Errorf("%w: duplicate dictionary term %v", snapshot.ErrCorrupt, t)
		}
		s.dict[t] = ID(len(s.terms))
		s.terms = append(s.terms, t)
	}
	s.spo = make([]enc, 0, min(numTriples, maxHint))
	var prev enc
	for i := uint64(0); i < numTriples; i++ {
		sv, pv, ov, err := sr.Triple()
		if err != nil {
			return nil, err
		}
		e := enc{ID(sv), ID(pv), ID(ov)}
		if e.s == 0 || uint64(e.s) > numTerms ||
			e.p == 0 || uint64(e.p) > numTerms ||
			e.o == 0 || uint64(e.o) > numTerms {
			return nil, fmt.Errorf("%w: triple %d references term outside dictionary", snapshot.ErrCorrupt, i)
		}
		if _, ok := s.terms[e.p].(rdf.IRI); !ok {
			return nil, fmt.Errorf("%w: triple %d predicate is not an IRI", snapshot.ErrCorrupt, i)
		}
		if i > 0 && !lessSPO(prev, e) {
			return nil, fmt.Errorf("%w: SPO index not strictly sorted at triple %d", snapshot.ErrCorrupt, i)
		}
		prev = e
		s.spo = append(s.spo, e)
	}
	// A v2 snapshot carries the per-predicate cardinality table; restoring
	// it pre-warms the planner cache that would otherwise be recomputed by
	// an O(n) scan on the first query. v1 snapshots restore with a cold
	// cache, exactly as before. Close verifies the checksum over the whole
	// stream (stats included), so the table is only trusted after it.
	stats, err := sr.Stats()
	if err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	if len(stats) > 0 {
		cards := make(map[rdf.IRI]PredCardinality, len(stats))
		for _, ps := range stats {
			p, ok := s.terms[ps.Pred].(rdf.IRI)
			if !ok {
				return nil, fmt.Errorf("%w: stats predicate %d is not an IRI", snapshot.ErrCorrupt, ps.Pred)
			}
			const maxInt = int(^uint(0) >> 1)
			if ps.Triples > uint64(maxInt) || ps.DistinctSubjects > uint64(maxInt) || ps.DistinctObjects > uint64(maxInt) {
				return nil, fmt.Errorf("%w: stats entry for predicate %d overflows", snapshot.ErrCorrupt, ps.Pred)
			}
			cards[p] = PredCardinality{
				Triples:          int(ps.Triples),
				DistinctSubjects: int(ps.DistinctSubjects),
				DistinctObjects:  int(ps.DistinctObjects),
			}
		}
		s.cards = cards
	}

	s.rebuildDerivedLocked()
	s.size = len(s.spo)
	if s.size > 0 {
		s.gen = 1
	}
	return s, nil
}

// WriteSnapshotFile atomically persists the store to path: the snapshot is
// written to a temporary file in the same directory, synced, and renamed
// over the destination, so a crash mid-write can never leave a truncated
// snapshot under the real name — readers see either the old image or the
// new one.
func (st *Store) WriteSnapshotFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = st.WriteSnapshot(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return nil
}

// ReadSnapshotFile reconstructs a store from a snapshot file.
func ReadSnapshotFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Read-only fd: close errors cannot lose data, discard explicitly.
	defer func() { _ = f.Close() }()
	return ReadSnapshot(f)
}
