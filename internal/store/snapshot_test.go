package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/snapshot"
)

// buildMixedStore returns a store exercising every term kind plus pending
// delta entries and tombstones (i.e. deliberately not compacted).
func buildMixedStore(t *testing.T) *Store {
	t.Helper()
	st := New()
	var batch []rdf.Triple
	for i := 0; i < 50; i++ {
		batch = append(batch, tr(fmt.Sprintf("s%d", i%10), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i)))
	}
	batch = append(batch,
		rdf.T(rdf.BlankNode("b1"), iri("p0"), rdf.NewLiteral("plain")),
		rdf.T(iri("s0"), iri("label"), rdf.NewLangLiteral("athens", "en")),
		rdf.T(iri("s1"), iri("pop"), rdf.NewInteger(664046)),
	)
	if _, err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	// Leave uncompacted state behind: a delta insert and a tombstone.
	if err := st.Add(tr("sX", "pX", "oX")); err != nil {
		t.Fatal(err)
	}
	if !st.Delete(tr("s0", "p0", "o0")) {
		t.Fatal("delete failed")
	}
	return st
}

func snapshotEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d != %d", a.Len(), b.Len())
	}
	at, bt := a.Triples(), b.Triples()
	seen := make(map[rdf.Triple]struct{}, len(at))
	for _, tr := range at {
		seen[tr] = struct{}{}
	}
	for _, tr := range bt {
		if _, ok := seen[tr]; !ok {
			t.Fatalf("restored store missing triple %v", tr)
		}
	}
	if len(at) != len(bt) {
		t.Fatalf("triple counts differ: %d != %d", len(at), len(bt))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := buildMixedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, st, got)
	if got.NumTerms() != st.NumTerms() {
		t.Fatalf("NumTerms: %d != %d", got.NumTerms(), st.NumTerms())
	}
	if got.Generation() == 0 {
		t.Fatal("restored non-empty store must have a non-zero generation")
	}
	// The restored store must answer pattern queries identically.
	for _, p := range []Pattern{{}, {S: iri("s1")}, {P: iri("p0")}, {O: iri("o3")}} {
		if a, b := st.Count(p), got.Count(p); a != b {
			t.Fatalf("Count(%v): %d != %d", p, a, b)
		}
	}
	// And remain fully writable.
	if err := got.Add(tr("new", "new", "new")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Generation() != 0 {
		t.Fatalf("empty snapshot: Len=%d gen=%d", got.Len(), got.Generation())
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	st := buildMixedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, off := range []int{9, 40, len(data) / 2, len(data) - 2} {
		mutated := append([]byte{}, data...)
		mutated[off] ^= 0x10
		if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
	}
	for _, cut := range []int{5, 20, len(data) / 3, len(data) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

// TestSnapshotRejectsAbsurdHeaderCounts: header counts are unverified until
// the trailing checksum, so a tampered header claiming 2^60 terms must come
// back as an error — not abort the process in an allocation.
func TestSnapshotRejectsAbsurdHeaderCounts(t *testing.T) {
	st := buildMixedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, tc := range []struct {
		name string
		off  int
	}{
		{"terms", 12},
		{"triples", 20},
	} {
		mutated := append([]byte{}, data...)
		binary.LittleEndian.PutUint64(mutated[tc.off:tc.off+8], 1<<60)
		if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("absurd %s count accepted", tc.name)
		}
	}
	// A large-but-plausible count with no matching payload must also fail
	// cleanly (runs out of input) rather than pre-allocating for it.
	mutated := append([]byte{}, data...)
	binary.LittleEndian.PutUint64(mutated[12:20], 50_000_000)
	if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
		t.Fatal("oversized term count with truncated payload accepted")
	}
}

func TestSnapshotFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")
	st := buildMixedStore(t)
	if err := st.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a grown store; the file must be replaced wholesale.
	if err := st.Add(tr("more", "more", "more")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, st, got)
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want 1", len(entries))
	}
}

// TestSnapshotConcurrentWriters snapshots while writers mutate the store;
// under -race this pins the capture-outside-the-lock serialization path.
func TestSnapshotConcurrentWriters(t *testing.T) {
	st := buildMixedStore(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st.Add(tr(fmt.Sprintf("cw%d", w), "p", fmt.Sprintf("o%d", i)))
				if i%7 == 0 {
					st.Delete(tr(fmt.Sprintf("cw%d", w), "p", fmt.Sprintf("o%d", i/2)))
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := st.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(&buf); err != nil {
			t.Fatalf("snapshot %d failed verification: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotV1Restore pins the migration path: a snapshot written in the
// pre-v2 format (subject-only delta coding, no stats section) restores to an
// identical store through the current reader.
func TestSnapshotV1Restore(t *testing.T) {
	st := buildMixedStore(t)
	st.Compact()

	// Write the v1 stream the way the old WriteSnapshot did: dictionary in
	// ID order, then the sorted SPO index.
	st.mu.Lock()
	terms := st.terms[:len(st.terms):len(st.terms)]
	spo := st.spo[:len(st.spo):len(st.spo)]
	st.mu.Unlock()
	var buf bytes.Buffer
	sw, err := snapshot.NewWriterVersion(&buf, snapshot.VersionV1, len(terms)-1, len(spo))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range terms[1:] {
		if err := sw.Term(tm); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range spo {
		if err := sw.Triple(uint32(e.s), uint32(e.p), uint32(e.o)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restoring v1 snapshot: %v", err)
	}
	snapshotEqual(t, st, got)
	// v1 carries no stats: the cardinality cache must start cold and be
	// recomputed on demand with correct values.
	got.mu.RLock()
	cold := got.cards == nil
	got.mu.RUnlock()
	if !cold {
		t.Fatal("v1 restore pre-populated the cardinality cache from nothing")
	}
	if len(got.Cardinalities()) == 0 {
		t.Fatal("restored store computed no cardinalities")
	}
}

// TestSnapshotV2WarmStats pins that a v2 snapshot restores with the
// cardinality table pre-populated and numerically identical to a from-scratch
// recomputation.
func TestSnapshotV2WarmStats(t *testing.T) {
	st := buildMixedStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snapshotEqual(t, st, got)

	got.mu.RLock()
	warm := got.cards
	got.mu.RUnlock()
	if warm == nil {
		t.Fatal("v2 restore left the cardinality cache cold")
	}
	got.mu.Lock()
	fresh := got.computeCardinalitiesLocked()
	got.mu.Unlock()
	if len(warm) != len(fresh) {
		t.Fatalf("warm stats cover %d predicates, recomputation %d", len(warm), len(fresh))
	}
	for p, w := range warm {
		if f, ok := fresh[p]; !ok || f != w {
			t.Fatalf("predicate %v: warm %+v vs recomputed %+v", p, w, fresh[p])
		}
	}
}
