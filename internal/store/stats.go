package store

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
)

// PredicateStat summarizes one predicate's usage; the exploration layer uses
// these for facet ordering and join-selectivity estimates.
type PredicateStat struct {
	Predicate rdf.IRI
	// Triples is the number of statements with this predicate.
	Triples int
	// DistinctSubjects and DistinctObjects are the cardinalities of each
	// side.
	DistinctSubjects int
	DistinctObjects  int
	// LiteralObjects counts object positions holding literals.
	LiteralObjects int
}

// Stats summarizes the dataset for the exploration layer.
type Stats struct {
	Triples    int
	Terms      int
	Predicates []PredicateStat
	// Classes maps rdf:type objects to instance counts.
	Classes map[rdf.Term]int
}

// ComputeStats scans the store once and produces summary statistics,
// the kind of source summary LODeX-style tools generate (Section 3.4).
func (st *Store) ComputeStats() Stats {
	type agg struct {
		triples int
		subj    map[rdf.Term]struct{}
		obj     map[rdf.Term]struct{}
		lits    int
	}
	perPred := map[rdf.IRI]*agg{}
	classes := map[rdf.Term]int{}
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		a := perPred[t.P]
		if a == nil {
			a = &agg{subj: map[rdf.Term]struct{}{}, obj: map[rdf.Term]struct{}{}}
			perPred[t.P] = a
		}
		a.triples++
		a.subj[t.S] = struct{}{}
		a.obj[t.O] = struct{}{}
		if t.O.Kind() == rdf.KindLiteral {
			a.lits++
		}
		if t.P == rdf.RDFType {
			classes[t.O]++
		}
		return true
	})
	s := Stats{Triples: st.Len(), Terms: st.NumTerms(), Classes: classes}
	for p, a := range perPred {
		s.Predicates = append(s.Predicates, PredicateStat{
			Predicate:        p,
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
			LiteralObjects:   a.lits,
		})
	}
	sort.Slice(s.Predicates, func(i, j int) bool {
		if s.Predicates[i].Triples != s.Predicates[j].Triples {
			return s.Predicates[i].Triples > s.Predicates[j].Triples
		}
		return s.Predicates[i].Predicate < s.Predicates[j].Predicate
	})
	return s
}

// PredCardinality holds the per-predicate cardinalities the SPARQL planner
// uses for join-selectivity estimation: how many statements use the
// predicate, and how many distinct terms appear on each side. The expected
// fan-out of probing `?s <p> ?o` with ?s already bound is
// Triples/DistinctSubjects; with ?o bound it is Triples/DistinctObjects.
type PredCardinality struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// Cardinalities returns the per-predicate cardinality table. The result is
// cached inside the store and recomputed lazily after mutations, so steady
// read-mostly query workloads pay for the O(n) scan once. Callers must treat
// the returned map as read-only.
func (st *Store) Cardinalities() map[rdf.IRI]PredCardinality {
	st.mu.RLock()
	if c := st.cards; c != nil {
		st.mu.RUnlock()
		return c
	}
	st.mu.RUnlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cards == nil {
		st.cards = st.computeCardinalitiesLocked()
	}
	return st.cards
}

// PredicateCardinality returns the cardinality record for one predicate.
func (st *Store) PredicateCardinality(p rdf.IRI) (PredCardinality, bool) {
	c, ok := st.Cardinalities()[p]
	return c, ok
}

// computeCardinalitiesLocked scans base + delta once, in ID space, skipping
// tombstones. Caller holds mu.
func (st *Store) computeCardinalitiesLocked() map[rdf.IRI]PredCardinality {
	type acc struct {
		triples int
		subj    map[ID]struct{}
		obj     map[ID]struct{}
	}
	per := map[ID]*acc{}
	visit := func(e enc) {
		if _, dead := st.deleted[e]; dead {
			return
		}
		a := per[e.p]
		if a == nil {
			a = &acc{subj: map[ID]struct{}{}, obj: map[ID]struct{}{}}
			per[e.p] = a
		}
		a.triples++
		a.subj[e.s] = struct{}{}
		a.obj[e.o] = struct{}{}
	}
	for _, e := range st.pos {
		visit(e)
	}
	for _, e := range st.delta {
		visit(e)
	}
	out := make(map[rdf.IRI]PredCardinality, len(per))
	for pid, a := range per {
		p, ok := st.terms[pid].(rdf.IRI)
		if !ok {
			continue
		}
		out[p] = PredCardinality{
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
		}
	}
	return out
}

// DegreeHistogram returns, for each out-degree d present, how many subjects
// have exactly d outgoing statements — the degree profile graph visualizers
// need for layout and abstraction decisions.
func (st *Store) DegreeHistogram() map[int]int {
	deg := map[rdf.Term]int{}
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		deg[t.S]++
		return true
	})
	hist := map[int]int{}
	for _, d := range deg {
		hist[d]++
	}
	return hist
}
