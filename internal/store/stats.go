package store

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
)

// PredicateStat summarizes one predicate's usage; the exploration layer uses
// these for facet ordering and join-selectivity estimates.
type PredicateStat struct {
	Predicate rdf.IRI
	// Triples is the number of statements with this predicate.
	Triples int
	// DistinctSubjects and DistinctObjects are the cardinalities of each
	// side.
	DistinctSubjects int
	DistinctObjects  int
	// LiteralObjects counts object positions holding literals.
	LiteralObjects int
}

// Stats summarizes the dataset for the exploration layer.
type Stats struct {
	Triples    int
	Terms      int
	Predicates []PredicateStat
	// Classes maps rdf:type objects to instance counts.
	Classes map[rdf.Term]int
}

// ComputeStats scans the store once and produces summary statistics,
// the kind of source summary LODeX-style tools generate (Section 3.4).
// The aggregation runs entirely in dictionary-ID space — per-predicate
// counters keyed by uint32 IDs instead of interface-valued terms — and
// decodes each distinct predicate and object exactly once at the end, so
// the scan never hashes a term it has already seen.
func (st *Store) ComputeStats() Stats {
	type agg struct {
		triples int
		subj    map[ID]struct{}
		// obj maps each distinct object to its occurrence count, so the
		// literal-object tally can be recovered with one kind check per
		// distinct object rather than one per triple.
		obj map[ID]int
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	perPred := map[ID]*agg{}
	classIDs := map[ID]int{}
	typeID, _ := st.lookup(rdf.RDFType)
	visit := func(e enc) {
		if _, dead := st.deleted[e]; dead {
			return
		}
		a := perPred[e.p]
		if a == nil {
			a = &agg{subj: map[ID]struct{}{}, obj: map[ID]int{}}
			perPred[e.p] = a
		}
		a.triples++
		a.subj[e.s] = struct{}{}
		a.obj[e.o]++
		if typeID != 0 && e.p == typeID {
			classIDs[e.o]++
		}
	}
	for _, e := range st.pos {
		visit(e)
	}
	for _, e := range st.delta {
		visit(e)
	}
	classes := make(map[rdf.Term]int, len(classIDs))
	for oid, n := range classIDs {
		classes[st.terms[oid]] = n
	}
	s := Stats{Triples: st.size, Terms: len(st.terms) - 1, Classes: classes}
	for pid, a := range perPred {
		lits := 0
		for oid, n := range a.obj {
			if st.terms[oid].Kind() == rdf.KindLiteral {
				lits += n
			}
		}
		s.Predicates = append(s.Predicates, PredicateStat{
			Predicate:        st.terms[pid].(rdf.IRI),
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
			LiteralObjects:   lits,
		})
	}
	sort.Slice(s.Predicates, func(i, j int) bool {
		if s.Predicates[i].Triples != s.Predicates[j].Triples {
			return s.Predicates[i].Triples > s.Predicates[j].Triples
		}
		return s.Predicates[i].Predicate < s.Predicates[j].Predicate
	})
	return s
}

// PredCardinality holds the per-predicate cardinalities the SPARQL planner
// uses for join-selectivity estimation: how many statements use the
// predicate, and how many distinct terms appear on each side. The expected
// fan-out of probing `?s <p> ?o` with ?s already bound is
// Triples/DistinctSubjects; with ?o bound it is Triples/DistinctObjects.
type PredCardinality struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// Cardinalities returns the per-predicate cardinality table. The result is
// cached inside the store and recomputed lazily after mutations, so steady
// read-mostly query workloads pay for the O(n) scan once. Callers must treat
// the returned map as read-only.
func (st *Store) Cardinalities() map[rdf.IRI]PredCardinality {
	st.mu.RLock()
	if c := st.cards; c != nil {
		st.mu.RUnlock()
		return c
	}
	st.mu.RUnlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cards == nil {
		st.cards = st.computeCardinalitiesLocked()
	}
	return st.cards
}

// PredicateCardinality returns the cardinality record for one predicate.
func (st *Store) PredicateCardinality(p rdf.IRI) (PredCardinality, bool) {
	c, ok := st.Cardinalities()[p]
	return c, ok
}

// computeCardinalitiesLocked scans base + delta once, in ID space, skipping
// tombstones. Caller holds mu.
func (st *Store) computeCardinalitiesLocked() map[rdf.IRI]PredCardinality {
	type acc struct {
		triples int
		subj    map[ID]struct{}
		obj     map[ID]struct{}
	}
	per := map[ID]*acc{}
	visit := func(e enc) {
		if _, dead := st.deleted[e]; dead {
			return
		}
		a := per[e.p]
		if a == nil {
			a = &acc{subj: map[ID]struct{}{}, obj: map[ID]struct{}{}}
			per[e.p] = a
		}
		a.triples++
		a.subj[e.s] = struct{}{}
		a.obj[e.o] = struct{}{}
	}
	for _, e := range st.pos {
		visit(e)
	}
	for _, e := range st.delta {
		visit(e)
	}
	out := make(map[rdf.IRI]PredCardinality, len(per))
	for pid, a := range per {
		p, ok := st.terms[pid].(rdf.IRI)
		if !ok {
			continue
		}
		out[p] = PredCardinality{
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
		}
	}
	return out
}

// DegreeHistogram returns, for each out-degree d present, how many subjects
// have exactly d outgoing statements — the degree profile graph visualizers
// need for layout and abstraction decisions.
func (st *Store) DegreeHistogram() map[int]int {
	deg := map[rdf.Term]int{}
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		deg[t.S]++
		return true
	})
	hist := map[int]int{}
	for _, d := range deg {
		hist[d]++
	}
	return hist
}
