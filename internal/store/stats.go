package store

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
)

// PredicateStat summarizes one predicate's usage; the exploration layer uses
// these for facet ordering and join-selectivity estimates.
type PredicateStat struct {
	Predicate rdf.IRI
	// Triples is the number of statements with this predicate.
	Triples int
	// DistinctSubjects and DistinctObjects are the cardinalities of each
	// side.
	DistinctSubjects int
	DistinctObjects  int
	// LiteralObjects counts object positions holding literals.
	LiteralObjects int
}

// Stats summarizes the dataset for the exploration layer.
type Stats struct {
	Triples    int
	Terms      int
	Predicates []PredicateStat
	// Classes maps rdf:type objects to instance counts.
	Classes map[rdf.Term]int
}

// ComputeStats scans the store once and produces summary statistics,
// the kind of source summary LODeX-style tools generate (Section 3.4).
func (st *Store) ComputeStats() Stats {
	type agg struct {
		triples int
		subj    map[rdf.Term]struct{}
		obj     map[rdf.Term]struct{}
		lits    int
	}
	perPred := map[rdf.IRI]*agg{}
	classes := map[rdf.Term]int{}
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		a := perPred[t.P]
		if a == nil {
			a = &agg{subj: map[rdf.Term]struct{}{}, obj: map[rdf.Term]struct{}{}}
			perPred[t.P] = a
		}
		a.triples++
		a.subj[t.S] = struct{}{}
		a.obj[t.O] = struct{}{}
		if t.O.Kind() == rdf.KindLiteral {
			a.lits++
		}
		if t.P == rdf.RDFType {
			classes[t.O]++
		}
		return true
	})
	s := Stats{Triples: st.Len(), Terms: st.NumTerms(), Classes: classes}
	for p, a := range perPred {
		s.Predicates = append(s.Predicates, PredicateStat{
			Predicate:        p,
			Triples:          a.triples,
			DistinctSubjects: len(a.subj),
			DistinctObjects:  len(a.obj),
			LiteralObjects:   a.lits,
		})
	}
	sort.Slice(s.Predicates, func(i, j int) bool {
		if s.Predicates[i].Triples != s.Predicates[j].Triples {
			return s.Predicates[i].Triples > s.Predicates[j].Triples
		}
		return s.Predicates[i].Predicate < s.Predicates[j].Predicate
	})
	return s
}

// DegreeHistogram returns, for each out-degree d present, how many subjects
// have exactly d outgoing statements — the degree profile graph visualizers
// need for layout and abstraction decisions.
func (st *Store) DegreeHistogram() map[int]int {
	deg := map[rdf.Term]int{}
	st.ForEach(Pattern{}, func(t rdf.Triple) bool {
		deg[t.S]++
		return true
	})
	hist := map[int]int{}
	for _, d := range deg {
		hist[d]++
	}
	return hist
}
