package store

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestCardinalities(t *testing.T) {
	st := New()
	// p1: 3 triples, 2 distinct subjects, 3 distinct objects.
	for _, tp := range []rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s1", "p1", "o2"),
		tr("s2", "p1", "o3"),
		// p2: 2 triples, 2 distinct subjects, 1 distinct object.
		tr("s1", "p2", "x"),
		tr("s2", "p2", "x"),
	} {
		if err := st.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	cards := st.Cardinalities()
	if len(cards) != 2 {
		t.Fatalf("Cardinalities has %d predicates, want 2", len(cards))
	}
	want := map[rdf.IRI]PredCardinality{
		iri("p1"): {Triples: 3, DistinctSubjects: 2, DistinctObjects: 3},
		iri("p2"): {Triples: 2, DistinctSubjects: 2, DistinctObjects: 1},
	}
	for p, w := range want {
		if got := cards[p]; got != w {
			t.Errorf("Cardinalities[%s] = %+v, want %+v", p, got, w)
		}
	}
	if c, ok := st.PredicateCardinality(iri("p1")); !ok || c != want[iri("p1")] {
		t.Errorf("PredicateCardinality(p1) = %+v, %v", c, ok)
	}
	if _, ok := st.PredicateCardinality(iri("nosuch")); ok {
		t.Error("PredicateCardinality(nosuch) reported ok")
	}
}

func TestCardinalitiesInvalidatedByWrites(t *testing.T) {
	st := New()
	if err := st.Add(tr("s1", "p1", "o1")); err != nil {
		t.Fatal(err)
	}
	if got := st.Cardinalities()[iri("p1")].Triples; got != 1 {
		t.Fatalf("initial Triples = %d, want 1", got)
	}
	// An insert must invalidate the cached table.
	if err := st.Add(tr("s2", "p1", "o2")); err != nil {
		t.Fatal(err)
	}
	if got := st.Cardinalities()[iri("p1")]; got != (PredCardinality{2, 2, 2}) {
		t.Errorf("after Add = %+v, want {2 2 2}", got)
	}
	// So must a delete.
	if !st.Delete(tr("s1", "p1", "o1")) {
		t.Fatal("Delete failed")
	}
	if got := st.Cardinalities()[iri("p1")]; got != (PredCardinality{1, 1, 1}) {
		t.Errorf("after Delete = %+v, want {1 1 1}", got)
	}
	// Compaction must not change the live counts.
	st.Compact()
	if got := st.Cardinalities()[iri("p1")]; got != (PredCardinality{1, 1, 1}) {
		t.Errorf("after Compact = %+v, want {1 1 1}", got)
	}
}

func TestCardinalitiesSpanBaseAndDelta(t *testing.T) {
	// Load merges into base; later Adds sit in the delta buffer. The table
	// must count both.
	st, err := Load([]rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s2", "p1", "o2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(tr("s3", "p1", "o3")); err != nil {
		t.Fatal(err)
	}
	if got := st.Cardinalities()[iri("p1")]; got != (PredCardinality{3, 3, 3}) {
		t.Errorf("Cardinalities = %+v, want {3 3 3}", got)
	}
}

func TestCardinalitiesConcurrentReaders(t *testing.T) {
	var triples []rdf.Triple
	for i := 0; i < 500; i++ {
		triples = append(triples, tr(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i%31)))
	}
	st, err := Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the lazy cache from many goroutines; -race verifies safety.
	done := make(chan map[rdf.IRI]PredCardinality, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- st.Cardinalities() }()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		got := <-done
		if len(got) != len(first) {
			t.Errorf("reader saw %d predicates, want %d", len(got), len(first))
		}
	}
	if len(first) != 7 {
		t.Errorf("predicates = %d, want 7", len(first))
	}
}

func TestCardinalitiesWarmStartAfterDeleteSnapshotRestore(t *testing.T) {
	// A delete burst, then snapshot, then restore: the restored store's
	// warm-started cardinality table (persisted v2 stats) must match a
	// fresh recount over the surviving triples — tombstoned triples must
	// not leak into the persisted statistics.
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		triples = append(triples,
			tr(fmt.Sprintf("s%d", i), "keep", fmt.Sprintf("o%d", i%13)),
			tr(fmt.Sprintf("s%d", i), "churn", fmt.Sprintf("v%d", i)),
		)
	}
	st, err := Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	var victims []rdf.Triple
	for i := 0; i < 150; i++ {
		victims = append(victims, tr(fmt.Sprintf("s%d", i), "churn", fmt.Sprintf("v%d", i)))
	}
	if n, err := st.DeleteBatch(victims); err != nil || n != 150 {
		t.Fatalf("DeleteBatch = %d, %v; want 150", n, err)
	}

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Load(restored.Triples())
	if err != nil {
		t.Fatal(err)
	}
	warm, recount := restored.Cardinalities(), fresh.Cardinalities()
	if len(warm) != len(recount) {
		t.Fatalf("warm table has %d predicates, recount %d", len(warm), len(recount))
	}
	for p, w := range warm {
		if r := recount[p]; w != r {
			t.Errorf("warm Cardinalities[%s] = %+v, recount %+v", p, w, r)
		}
	}
	if got := warm[iri("churn")]; got != (PredCardinality{Triples: 50, DistinctSubjects: 50, DistinctObjects: 50}) {
		t.Errorf("churn after restore = %+v, want {50 50 50}", got)
	}
}
