// Package store implements the lodviz triple store: a dictionary-encoded,
// in-memory RDF store with four sorted permutation indexes (SPO, POS, OSP,
// PSO) answering any triple pattern with at most one binary-searched range
// scan, and — through the ID-space scan API in idscan.go — serving sorted
// uint32 runs the SPARQL engine merge-joins without decoding terms.
//
// The survey's "large & dynamic data" challenge (Section 2) rules out a
// heavyweight preprocessing phase, so the store is built for incremental
// ingestion: inserts land in an unsorted delta buffer that is merged into the
// sorted base lazily, once it grows past a fraction of the base — the same
// amortization idea as LSM-style stores, kept single-node and in-memory.
package store

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/lodviz/lodviz/internal/ntriples"
	"github.com/lodviz/lodviz/internal/rdf"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at 1;
// 0 is reserved as "no term".
type ID uint32

// Bits exposes the ID's raw dictionary slot as a plain integer for hashing
// and map-key material. Outside this package an ID is a name, not a number
// (the idspace analyzer rejects raw conversions and arithmetic); Bits and
// PackPair are the sanctioned escape hatches, and they carry no ordering or
// density guarantees beyond "equal IDs produce equal bits".
func (id ID) Bits() uint64 { return uint64(id) }

// PackPair packs two IDs into a single comparable value, for pair-keyed
// maps and sets. The packing is injective but otherwise opaque: callers
// must not unpack or compare packed values for order.
func PackPair(a, b ID) uint64 { return uint64(a)<<32 | uint64(b) }

type enc struct{ s, p, o ID }

// Store is an in-memory, concurrency-safe triple store.
//
// The zero value is not usable; call New.
type Store struct {
	mu    sync.RWMutex
	dict  map[rdf.Term]ID
	terms []rdf.Term // index = ID (terms[0] unused)

	// base indexes, each sorted in its permutation order. PSO exists for
	// merge joins: a bound-predicate pattern scanned through it yields
	// subjects in sorted order, so a join on the subject variable against
	// an already-sorted binding column is a linear merge instead of
	// per-binding probes — the star-join shape of faceted exploration.
	spo, pos, osp, pso []enc
	// delta holds recently inserted triples not yet merged, unsorted.
	delta []enc
	// deleted tombstones triples awaiting physical removal on merge.
	deleted map[enc]struct{}

	size int // live triple count

	// gen counts content mutations: it advances exactly when the set of
	// live triples changes (insert, undelete, delete), never on merges or
	// duplicate inserts. External caches key results by generation so a
	// write observably invalidates everything derived from older state.
	gen uint64

	// layout counts physical index reshuffles: delta compaction and bulk
	// index rebuilds, the events that invalidate ForEachPage's positional
	// cursors. Delta appends and tombstone deletes leave existing
	// positions intact and do not advance it.
	layout uint64

	// cards caches per-predicate cardinalities for the query planner;
	// nil means stale. Guarded by mu, invalidated on every mutation.
	cards map[rdf.IRI]PredCardinality

	// wal, when set via SetWAL, receives every effective mutation before it
	// is applied (see walsink.go for the ordering contract).
	wal WALSink

	// scanPages counts paged-scan calls (ForEachPage/ForEachIDPage) for
	// the observability snapshot; atomic so page scans don't write under
	// the read lock's shared hold.
	scanPages atomic.Uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:    make(map[rdf.Term]ID),
		terms:   make([]rdf.Term, 1),
		deleted: make(map[enc]struct{}),
	}
}

// Load creates a store from a slice of triples. It is AddBatch on a fresh
// store plus an eager compaction, so the result starts with a fully sorted
// base and an empty delta. The generation advances only if the input holds
// at least one live triple: loading nothing leaves it at zero.
func Load(triples []rdf.Triple) (*Store, error) {
	s := New()
	if _, err := s.AddBatch(triples); err != nil {
		return nil, err
	}
	s.Compact()
	return s, nil
}

// LoadNTriples streams an N-Triples document into a fresh store in bounded
// chunks: each decoder chunk is batch-inserted as it arrives, so inputs far
// larger than any single allocation load without materializing the whole
// parse at once.
func LoadNTriples(r io.Reader) (*Store, error) {
	s := New()
	if err := ntriples.NewDecoder(r).DecodeAll(func(chunk []rdf.Triple) error {
		_, err := s.AddBatch(chunk)
		return err
	}); err != nil {
		return nil, err
	}
	s.Compact()
	return s, nil
}

// Generation returns the store's content generation: a counter that advances
// on every mutation of the live triple set. Two calls returning the same
// value bracket a window in which no write changed query-visible state, so
// any result computed against the store inside that window is still valid.
func (st *Store) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.gen
}

// LayoutEpoch returns the store's index-layout epoch: a counter that
// advances whenever physical scan positions are reshuffled (delta
// compaction, bulk index rebuilds). A paged scan (ForEachPage) whose
// cursor spans two different epochs may have skipped or repeated triples;
// callers compare epochs across pages and restart or abort on a change.
// Plain appends and tombstone deletes do not advance it.
func (st *Store) LayoutEpoch() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.layout
}

// intern returns the ID for t, creating one if needed. Caller holds mu.
func (st *Store) intern(t rdf.Term) ID {
	if id, ok := st.dict[t]; ok {
		return id
	}
	id := ID(len(st.terms))
	st.dict[t] = id
	st.terms = append(st.terms, t)
	return id
}

// lookup returns the ID for t without creating one.
func (st *Store) lookup(t rdf.Term) (ID, bool) {
	id, ok := st.dict[t]
	return id, ok
}

// Term returns the term for a dictionary ID.
func (st *Store) Term(id ID) (rdf.Term, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if id == 0 || int(id) >= len(st.terms) {
		return nil, false
	}
	return st.terms[id], true
}

// Add inserts one triple. Duplicate inserts are idempotent. It is AddBatch
// on a single-element batch and shares its WAL semantics.
func (st *Store) Add(t rdf.Triple) error {
	_, err := st.AddBatch([]rdf.Triple{t})
	return err
}

// AddAll inserts a batch of triples atomically; see AddBatch.
func (st *Store) AddAll(triples []rdf.Triple) error {
	_, err := st.AddBatch(triples)
	return err
}

// AddBatch inserts a batch of triples under a single lock acquisition and
// returns how many of them changed the live triple set (new inserts plus
// undeletes; duplicates count zero).
//
// The batch is applied atomically: every triple is validated before the
// store is touched, so an error means the store — contents, size, and
// generation — is exactly as it was. A batch that does change the live set
// advances the generation exactly once, however large it is, so
// generation-keyed caches are invalidated once per batch rather than once
// per triple.
//
// Unlike a loop over Add (which pays a lock round-trip and an O(|delta|)
// duplicate scan per triple), AddBatch interns all terms, sorts and
// in-batch-deduplicates the encoded triples, and set-differences them
// against the base index (one binary search each) and the delta buffer (one
// map build) — O(n log n) for the whole batch.
//
// With a WAL attached (SetWAL), the effective subset of the batch — the
// triples that actually change the live set — is appended to the log before
// being applied, and AddBatch does not return success until the record is
// fsynced. A WAL append error leaves the live set untouched (only dictionary
// interning may have grown, which is not query-visible); a sync error means
// the mutation is applied in memory but its durability is unknown — the
// error is returned and the caller must treat the write as failed.
func (st *Store) AddBatch(triples []rdf.Triple) (int, error) {
	for i, t := range triples {
		if !t.Valid() {
			return 0, fmt.Errorf("store: invalid triple at index %d: %v", i, t)
		}
	}
	if len(triples) == 0 {
		return 0, nil
	}
	st.mu.Lock()
	added, seq, err := st.addBatchLocked(triples)
	sink := st.wal
	st.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// Group commit happens out here: the fsync is outside the store lock, so
	// concurrent committers pile up behind one disk flush without blocking
	// readers or each other's in-memory work.
	if sink != nil && seq > 0 {
		if err := sink.Sync(seq); err != nil {
			return added, fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return added, nil
}

// addBatchLocked plans, logs, and applies one insert batch. It returns the
// number of live-set changes and the WAL sequence to sync (0 when nothing
// changed or no WAL is attached). Caller holds mu.
func (st *Store) addBatchLocked(triples []rdf.Triple) (int, uint64, error) {
	// Bulk load into a fresh dictionary: size it for the incoming terms up
	// front, since growing a map incrementally rehashes every key at every
	// doubling (most of the cost of interning a large batch).
	if len(st.dict) == 0 && len(triples) > 1024 {
		st.dict = make(map[rdf.Term]ID, 2*len(triples))
		st.terms = slices.Grow(st.terms, 2*len(triples))
	}

	batch := make([]enc, 0, len(triples))
	// Predicates repeat heavily within a batch; caching their IDs by the
	// concrete IRI type avoids boxing each one into an interface per triple.
	pids := make(map[rdf.IRI]ID, 16)
	var lastS rdf.Term
	var lastSID ID
	for _, t := range triples {
		pid, ok := pids[t.P]
		if !ok {
			pid = st.intern(rdf.Term(t.P))
			pids[t.P] = pid
		}
		// N-Triples dumps group statements by subject; remembering the
		// previous subject skips most dictionary lookups.
		sid := lastSID
		if t.S != lastS || lastSID == 0 {
			sid = st.intern(t.S)
			lastS, lastSID = t.S, sid
		}
		batch = append(batch, enc{sid, pid, st.intern(t.O)})
	}
	batch = st.sortSPOLocked(batch)
	batch = dedupe(batch)

	// Bulk load into an empty store: the sorted, deduplicated batch IS the
	// final SPO index — skip the per-element membership checks and the
	// rebuild-everything merge.
	if len(st.spo) == 0 && len(st.delta) == 0 && len(st.deleted) == 0 {
		seq, err := st.walAppendLocked(false, batch)
		if err != nil {
			return 0, 0, err
		}
		st.spo = batch
		st.rebuildDerivedLocked()
		st.size = len(batch)
		st.layout++
		if st.size > 0 {
			st.gen++
			st.cards = nil
		}
		return st.size, seq, nil
	}

	inDelta := make(map[enc]struct{}, len(st.delta))
	for _, e := range st.delta {
		inDelta[e] = struct{}{}
	}

	// Plan first, mutate after: the WAL record must hold exactly the
	// effective subset, and a failed append must leave the live set as it
	// was — so nothing is touched until the record is in the log.
	effective := make([]enc, 0, len(batch))
	for _, e := range batch {
		if _, dead := st.deleted[e]; dead {
			effective = append(effective, e)
			continue
		}
		if _, pending := inDelta[e]; pending {
			continue
		}
		if lo, hi := rangeSPO(st.spo, e.s, e.p, e.o); lo < hi {
			continue
		}
		effective = append(effective, e)
	}
	if len(effective) == 0 {
		return 0, 0, nil
	}
	seq, err := st.walAppendLocked(false, effective)
	if err != nil {
		return 0, 0, err
	}

	for _, e := range effective {
		if _, dead := st.deleted[e]; dead {
			delete(st.deleted, e)
			st.size++
			continue
		}
		st.delta = append(st.delta, e)
		st.size++
	}
	st.gen++
	st.cards = nil
	if len(st.delta) > 1024 && len(st.delta) > len(st.spo)/8 {
		st.mergeLocked()
	}
	return len(effective), seq, nil
}

// Delete removes a triple; it reports whether the triple was present. It is
// DeleteBatch on a single-element batch; callers that need the WAL error use
// DeleteBatch directly.
func (st *Store) Delete(t rdf.Triple) bool {
	n, _ := st.DeleteBatch([]rdf.Triple{t})
	return n == 1
}

// DeleteBatch removes a batch of triples under a single lock acquisition and
// returns how many of them were present (and are now gone). Triples the
// store does not hold are skipped. With a WAL attached, the present subset
// is appended to the log before the tombstones are written, with the same
// durability contract as AddBatch.
func (st *Store) DeleteBatch(triples []rdf.Triple) (int, error) {
	if len(triples) == 0 {
		return 0, nil
	}
	st.mu.Lock()
	removed, seq, err := st.deleteBatchLocked(triples)
	sink := st.wal
	st.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if sink != nil && seq > 0 {
		if err := sink.Sync(seq); err != nil {
			return removed, fmt.Errorf("store: wal sync: %w", err)
		}
	}
	return removed, nil
}

// deleteBatchLocked plans, logs, and applies one delete batch; the
// plan/log/apply split mirrors addBatchLocked. Caller holds mu.
func (st *Store) deleteBatchLocked(triples []rdf.Triple) (int, uint64, error) {
	seen := make(map[enc]struct{}, len(triples))
	present := make([]enc, 0, len(triples))
	for _, t := range triples {
		sid, ok1 := st.lookup(t.S)
		pid, ok2 := st.lookup(rdf.Term(t.P))
		oid, ok3 := st.lookup(t.O)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		e := enc{sid, pid, oid}
		if _, dup := seen[e]; dup {
			continue
		}
		if !st.containsLocked(e) {
			continue
		}
		seen[e] = struct{}{}
		present = append(present, e)
	}
	if len(present) == 0 {
		return 0, 0, nil
	}
	seq, err := st.walAppendLocked(true, present)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range present {
		st.deleted[e] = struct{}{}
		st.size--
	}
	st.gen++
	st.cards = nil
	if len(st.deleted) > 1024 && len(st.deleted) > len(st.spo)/8 {
		st.mergeLocked()
	}
	return len(present), seq, nil
}

// containsLocked reports whether e is live in base or delta.
func (st *Store) containsLocked(e enc) bool {
	if _, dead := st.deleted[e]; dead {
		return false
	}
	lo, hi := rangeSPO(st.spo, e.s, e.p, e.o)
	if lo < hi {
		return true
	}
	for _, d := range st.delta {
		if d == e {
			return true
		}
	}
	return false
}

// Contains reports whether the store holds the given triple.
func (st *Store) Contains(t rdf.Triple) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	sid, ok1 := st.lookup(t.S)
	pid, ok2 := st.lookup(rdf.Term(t.P))
	oid, ok3 := st.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.containsLocked(enc{sid, pid, oid})
}

// Len returns the number of live triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.size
}

// NumTerms returns the dictionary size.
func (st *Store) NumTerms() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.terms) - 1
}

// Compact forces the pending delta and tombstones to be merged into the
// sorted base indexes.
func (st *Store) Compact() {
	st.mu.Lock()
	st.mergeLocked()
	st.mu.Unlock()
}

// mergeLocked folds delta into the three base indexes and drops tombstones.
func (st *Store) mergeLocked() {
	if len(st.delta) == 0 && len(st.deleted) == 0 {
		return
	}
	live := make([]enc, 0, len(st.spo)+len(st.delta))
	for _, e := range st.spo {
		if _, dead := st.deleted[e]; !dead {
			live = append(live, e)
		}
	}
	for _, e := range st.delta {
		if _, dead := st.deleted[e]; !dead {
			live = append(live, e)
		}
	}
	st.delta = nil
	st.deleted = make(map[enc]struct{})

	live = st.sortSPOLocked(live)
	st.spo = dedupe(live)
	st.rebuildDerivedLocked()
	st.size = len(st.spo)
	st.layout++
}

// sortSPOLocked sorts entries into (s,p,o) order. Large inputs go through
// three stable counting passes — O(n + |dict|), no comparisons — which is
// what makes bulk ingestion cheap; small inputs fall back to a comparison
// sort so a trickle insert into a huge dictionary doesn't pay for
// dictionary-sized counting arrays. The returned slice may use different
// backing storage than the input.
func (st *Store) sortSPOLocked(in []enc) []enc {
	if len(in) < len(st.terms)/4 {
		slices.SortFunc(in, cmpSPO)
		return in
	}
	tmp := make([]enc, len(in))
	counts := make([]uint32, len(st.terms))
	countingPass(in, tmp, counts, byO) // least significant key first
	clear(counts)
	countingPass(tmp, in, counts, byP)
	clear(counts)
	countingPass(in, tmp, counts, byS)
	return tmp
}

// rebuildDerivedLocked derives the OSP, POS and PSO indexes from a sorted,
// deduplicated SPO index. Three stable counting passes do it without a
// single comparison: spo is ordered (s,p,o), so stably reordering it by o
// leaves ties ordered (s,p) — exactly OSP — stably reordering OSP by p
// leaves ties ordered (o,s) — exactly POS — and stably reordering SPO by p
// leaves ties ordered (s,o) — exactly PSO. Small indexes with outsized
// dictionaries fall back to comparison sorts.
func (st *Store) rebuildDerivedLocked() {
	n := len(st.spo)
	st.osp = make([]enc, n)
	st.pos = make([]enc, n)
	st.pso = make([]enc, n)
	if n < len(st.terms)/4 {
		copy(st.osp, st.spo)
		slices.SortFunc(st.osp, cmpOSP)
		copy(st.pos, st.spo)
		slices.SortFunc(st.pos, cmpPOS)
		copy(st.pso, st.spo)
		slices.SortFunc(st.pso, cmpPSO)
		return
	}
	counts := make([]uint32, len(st.terms))
	countingPass(st.spo, st.osp, counts, byO)
	clear(counts)
	countingPass(st.osp, st.pos, counts, byP)
	clear(counts)
	countingPass(st.spo, st.pso, counts, byP)
}

func byS(e enc) ID { return e.s }
func byP(e enc) ID { return e.p }
func byO(e enc) ID { return e.o }

// countingPass stably reorders src into dst by key. counts must be zeroed
// and sized past the largest ID; it is left dirty.
func countingPass(src, dst []enc, counts []uint32, key func(enc) ID) {
	for _, e := range src {
		counts[key(e)]++
	}
	sum := uint32(0)
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	for _, e := range src {
		k := key(e)
		dst[counts[k]] = e
		counts[k]++
	}
}

func dedupe(s []enc) []enc {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// cmpSPO/cmpPOS/cmpOSP are the three permutation orders as three-way
// comparisons for slices.SortFunc (which sorts concrete []enc without the
// reflection overhead of sort.Slice — merges are on the bulk-write path).
func cmpSPO(a, b enc) int {
	if a.s != b.s {
		if a.s < b.s {
			return -1
		}
		return 1
	}
	if a.p != b.p {
		if a.p < b.p {
			return -1
		}
		return 1
	}
	if a.o != b.o {
		if a.o < b.o {
			return -1
		}
		return 1
	}
	return 0
}

func cmpPOS(a, b enc) int {
	if a.p != b.p {
		if a.p < b.p {
			return -1
		}
		return 1
	}
	if a.o != b.o {
		if a.o < b.o {
			return -1
		}
		return 1
	}
	if a.s != b.s {
		if a.s < b.s {
			return -1
		}
		return 1
	}
	return 0
}

func cmpPSO(a, b enc) int {
	if a.p != b.p {
		if a.p < b.p {
			return -1
		}
		return 1
	}
	if a.s != b.s {
		if a.s < b.s {
			return -1
		}
		return 1
	}
	if a.o != b.o {
		if a.o < b.o {
			return -1
		}
		return 1
	}
	return 0
}

func cmpOSP(a, b enc) int {
	if a.o != b.o {
		if a.o < b.o {
			return -1
		}
		return 1
	}
	if a.s != b.s {
		if a.s < b.s {
			return -1
		}
		return 1
	}
	if a.p != b.p {
		if a.p < b.p {
			return -1
		}
		return 1
	}
	return 0
}

func lessSPO(a, b enc) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	if a.p != b.p {
		return a.p < b.p
	}
	return a.o < b.o
}

func lessPOS(a, b enc) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	if a.o != b.o {
		return a.o < b.o
	}
	return a.s < b.s
}

func lessOSP(a, b enc) bool {
	if a.o != b.o {
		return a.o < b.o
	}
	if a.s != b.s {
		return a.s < b.s
	}
	return a.p < b.p
}

// rangeSPO binary-searches the SPO index for the sub-slice matching the
// bound prefix (0 = unbound; bindings must be prefix-closed in SPO order).
func rangeSPO(idx []enc, s, p, o ID) (int, int) {
	switch {
	case p == 0: // s only
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].s >= s })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].s > s })
		return lo, hi
	case o == 0: // s, p
		lo := sort.Search(len(idx), func(i int) bool {
			e := idx[i]
			if e.s != s {
				return e.s >= s
			}
			return e.p >= p
		})
		hi := sort.Search(len(idx), func(i int) bool {
			e := idx[i]
			if e.s != s {
				return e.s > s
			}
			return e.p > p
		})
		return lo, hi
	default: // s, p, o fully bound
		lo := sort.Search(len(idx), func(i int) bool {
			return !lessSPO(idx[i], enc{s, p, o})
		})
		hi := sort.Search(len(idx), func(i int) bool {
			return lessSPO(enc{s, p, o}, idx[i])
		})
		return lo, hi
	}
}

func rangePOS(idx []enc, p, o ID) (int, int) {
	if o == 0 {
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].p >= p })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].p > p })
		return lo, hi
	}
	lo := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p >= p
		}
		return e.o >= o
	})
	hi := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p > p
		}
		return e.o > o
	})
	return lo, hi
}

func rangePSO(idx []enc, p, s ID) (int, int) {
	if s == 0 {
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].p >= p })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].p > p })
		return lo, hi
	}
	lo := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p >= p
		}
		return e.s >= s
	})
	hi := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p > p
		}
		return e.s > s
	})
	return lo, hi
}

func rangeOSP(idx []enc, o, s ID) (int, int) {
	if s == 0 {
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].o >= o })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].o > o })
		return lo, hi
	}
	lo := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.o != o {
			return e.o >= o
		}
		return e.s >= s
	})
	hi := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.o != o {
			return e.o > o
		}
		return e.s > s
	})
	return lo, hi
}
