// Package store implements the lodviz triple store: a dictionary-encoded,
// in-memory RDF store with three sorted permutation indexes (SPO, POS, OSP)
// answering any triple pattern with at most one binary-searched range scan.
//
// The survey's "large & dynamic data" challenge (Section 2) rules out a
// heavyweight preprocessing phase, so the store is built for incremental
// ingestion: inserts land in an unsorted delta buffer that is merged into the
// sorted base lazily, once it grows past a fraction of the base — the same
// amortization idea as LSM-style stores, kept single-node and in-memory.
package store

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lodviz/lodviz/internal/rdf"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at 1;
// 0 is reserved as "no term".
type ID uint32

type enc struct{ s, p, o ID }

// Store is an in-memory, concurrency-safe triple store.
//
// The zero value is not usable; call New.
type Store struct {
	mu    sync.RWMutex
	dict  map[rdf.Term]ID
	terms []rdf.Term // index = ID (terms[0] unused)

	// base indexes, each sorted in its permutation order.
	spo, pos, osp []enc
	// delta holds recently inserted triples not yet merged, unsorted.
	delta []enc
	// deleted tombstones triples awaiting physical removal on merge.
	deleted map[enc]struct{}

	size int // live triple count

	// gen counts content mutations: it advances exactly when the set of
	// live triples changes (insert, undelete, delete), never on merges or
	// duplicate inserts. External caches key results by generation so a
	// write observably invalidates everything derived from older state.
	gen uint64

	// cards caches per-predicate cardinalities for the query planner;
	// nil means stale. Guarded by mu, invalidated on every mutation.
	cards map[rdf.IRI]PredCardinality
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:    make(map[rdf.Term]ID),
		terms:   make([]rdf.Term, 1),
		deleted: make(map[enc]struct{}),
	}
}

// Load creates a store from a slice of triples. Unlike Add, the bulk path
// skips per-triple duplicate checks and deduplicates once during the final
// sort, so loading is O(n log n) rather than O(n²).
func Load(triples []rdf.Triple) (*Store, error) {
	s := New()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range triples {
		if !t.Valid() {
			return nil, fmt.Errorf("store: invalid triple %v", t)
		}
		s.delta = append(s.delta, enc{s.intern(t.S), s.intern(rdf.Term(t.P)), s.intern(t.O)})
	}
	s.mergeLocked()
	s.gen++
	return s, nil
}

// Generation returns the store's content generation: a counter that advances
// on every mutation of the live triple set. Two calls returning the same
// value bracket a window in which no write changed query-visible state, so
// any result computed against the store inside that window is still valid.
func (st *Store) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.gen
}

// intern returns the ID for t, creating one if needed. Caller holds mu.
func (st *Store) intern(t rdf.Term) ID {
	if id, ok := st.dict[t]; ok {
		return id
	}
	id := ID(len(st.terms))
	st.dict[t] = id
	st.terms = append(st.terms, t)
	return id
}

// lookup returns the ID for t without creating one.
func (st *Store) lookup(t rdf.Term) (ID, bool) {
	id, ok := st.dict[t]
	return id, ok
}

// Term returns the term for a dictionary ID.
func (st *Store) Term(id ID) (rdf.Term, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if id == 0 || int(id) >= len(st.terms) {
		return nil, false
	}
	return st.terms[id], true
}

// Add inserts one triple. Duplicate inserts are idempotent.
func (st *Store) Add(t rdf.Triple) error {
	if !t.Valid() {
		return fmt.Errorf("store: invalid triple %v", t)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := enc{st.intern(t.S), st.intern(rdf.Term(t.P)), st.intern(t.O)}
	st.addEncLocked(e)
	return nil
}

func (st *Store) addEncLocked(e enc) {
	if _, dead := st.deleted[e]; dead {
		delete(st.deleted, e)
		st.size++
		st.gen++
		st.cards = nil
		return
	}
	if st.containsLocked(e) {
		return
	}
	st.delta = append(st.delta, e)
	st.size++
	st.gen++
	st.cards = nil
	if len(st.delta) > 1024 && len(st.delta) > len(st.spo)/8 {
		st.mergeLocked()
	}
}

// AddAll inserts a batch of triples.
func (st *Store) AddAll(triples []rdf.Triple) error {
	for _, t := range triples {
		if err := st.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a triple; it reports whether the triple was present.
func (st *Store) Delete(t rdf.Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	sid, ok1 := st.lookup(t.S)
	pid, ok2 := st.lookup(rdf.Term(t.P))
	oid, ok3 := st.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	e := enc{sid, pid, oid}
	if !st.containsLocked(e) {
		return false
	}
	st.deleted[e] = struct{}{}
	st.size--
	st.gen++
	st.cards = nil
	if len(st.deleted) > 1024 && len(st.deleted) > len(st.spo)/8 {
		st.mergeLocked()
	}
	return true
}

// containsLocked reports whether e is live in base or delta.
func (st *Store) containsLocked(e enc) bool {
	if _, dead := st.deleted[e]; dead {
		return false
	}
	lo, hi := rangeSPO(st.spo, e.s, e.p, e.o)
	if lo < hi {
		return true
	}
	for _, d := range st.delta {
		if d == e {
			return true
		}
	}
	return false
}

// Contains reports whether the store holds the given triple.
func (st *Store) Contains(t rdf.Triple) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	sid, ok1 := st.lookup(t.S)
	pid, ok2 := st.lookup(rdf.Term(t.P))
	oid, ok3 := st.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return st.containsLocked(enc{sid, pid, oid})
}

// Len returns the number of live triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.size
}

// NumTerms returns the dictionary size.
func (st *Store) NumTerms() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.terms) - 1
}

// Compact forces the pending delta and tombstones to be merged into the
// sorted base indexes.
func (st *Store) Compact() {
	st.mu.Lock()
	st.mergeLocked()
	st.mu.Unlock()
}

// mergeLocked folds delta into the three base indexes and drops tombstones.
func (st *Store) mergeLocked() {
	if len(st.delta) == 0 && len(st.deleted) == 0 {
		return
	}
	live := make([]enc, 0, len(st.spo)+len(st.delta))
	for _, e := range st.spo {
		if _, dead := st.deleted[e]; !dead {
			live = append(live, e)
		}
	}
	for _, e := range st.delta {
		if _, dead := st.deleted[e]; !dead {
			live = append(live, e)
		}
	}
	st.delta = nil
	st.deleted = make(map[enc]struct{})

	st.spo = make([]enc, len(live))
	copy(st.spo, live)
	sort.Slice(st.spo, func(i, j int) bool { return lessSPO(st.spo[i], st.spo[j]) })
	st.spo = dedupe(st.spo)

	st.pos = make([]enc, len(st.spo))
	copy(st.pos, st.spo)
	sort.Slice(st.pos, func(i, j int) bool { return lessPOS(st.pos[i], st.pos[j]) })

	st.osp = make([]enc, len(st.spo))
	copy(st.osp, st.spo)
	sort.Slice(st.osp, func(i, j int) bool { return lessOSP(st.osp[i], st.osp[j]) })

	st.size = len(st.spo)
}

func dedupe(s []enc) []enc {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

func lessSPO(a, b enc) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	if a.p != b.p {
		return a.p < b.p
	}
	return a.o < b.o
}

func lessPOS(a, b enc) bool {
	if a.p != b.p {
		return a.p < b.p
	}
	if a.o != b.o {
		return a.o < b.o
	}
	return a.s < b.s
}

func lessOSP(a, b enc) bool {
	if a.o != b.o {
		return a.o < b.o
	}
	if a.s != b.s {
		return a.s < b.s
	}
	return a.p < b.p
}

// rangeSPO binary-searches the SPO index for the sub-slice matching the
// bound prefix (0 = unbound; bindings must be prefix-closed in SPO order).
func rangeSPO(idx []enc, s, p, o ID) (int, int) {
	switch {
	case p == 0: // s only
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].s >= s })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].s > s })
		return lo, hi
	case o == 0: // s, p
		lo := sort.Search(len(idx), func(i int) bool {
			e := idx[i]
			if e.s != s {
				return e.s >= s
			}
			return e.p >= p
		})
		hi := sort.Search(len(idx), func(i int) bool {
			e := idx[i]
			if e.s != s {
				return e.s > s
			}
			return e.p > p
		})
		return lo, hi
	default: // s, p, o fully bound
		lo := sort.Search(len(idx), func(i int) bool {
			return !lessSPO(idx[i], enc{s, p, o})
		})
		hi := sort.Search(len(idx), func(i int) bool {
			return lessSPO(enc{s, p, o}, idx[i])
		})
		return lo, hi
	}
}

func rangePOS(idx []enc, p, o ID) (int, int) {
	if o == 0 {
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].p >= p })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].p > p })
		return lo, hi
	}
	lo := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p >= p
		}
		return e.o >= o
	})
	hi := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.p != p {
			return e.p > p
		}
		return e.o > o
	})
	return lo, hi
}

func rangeOSP(idx []enc, o, s ID) (int, int) {
	if s == 0 {
		lo := sort.Search(len(idx), func(i int) bool { return idx[i].o >= o })
		hi := sort.Search(len(idx), func(i int) bool { return idx[i].o > o })
		return lo, hi
	}
	lo := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.o != o {
			return e.o >= o
		}
		return e.s >= s
	})
	hi := sort.Search(len(idx), func(i int) bool {
		e := idx[i]
		if e.o != o {
			return e.o > o
		}
		return e.s > s
	})
	return lo, hi
}
