package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/lodviz/lodviz/internal/rdf"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://e/" + s) }

func tr(s, p, o string) rdf.Triple {
	return rdf.T(iri(s), iri(p), iri(o))
}

func TestAddContainsDelete(t *testing.T) {
	st := New()
	a := tr("s", "p", "o")
	if err := st.Add(a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !st.Contains(a) {
		t.Error("Contains after Add = false")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	// Duplicate insert is idempotent.
	if err := st.Add(a); err != nil {
		t.Fatalf("Add dup: %v", err)
	}
	if st.Len() != 1 {
		t.Errorf("Len after dup = %d, want 1", st.Len())
	}
	if !st.Delete(a) {
		t.Error("Delete = false, want true")
	}
	if st.Contains(a) || st.Len() != 0 {
		t.Error("triple still visible after Delete")
	}
	if st.Delete(a) {
		t.Error("double Delete = true, want false")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	st := New()
	if err := st.Add(rdf.Triple{S: rdf.NewLiteral("x"), P: "p", O: iri("o")}); err == nil {
		t.Error("Add accepted literal subject")
	}
}

func TestReAddAfterDelete(t *testing.T) {
	st := New()
	a := tr("s", "p", "o")
	st.Add(a)
	st.Delete(a)
	st.Add(a)
	if !st.Contains(a) || st.Len() != 1 {
		t.Error("re-add after delete failed")
	}
}

func TestMatchPatterns(t *testing.T) {
	st := New()
	data := []rdf.Triple{
		tr("s1", "p1", "o1"),
		tr("s1", "p1", "o2"),
		tr("s1", "p2", "o1"),
		tr("s2", "p1", "o1"),
		tr("s2", "p2", "o3"),
	}
	if err := st.AddAll(data); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pat  Pattern
		want int
	}{
		{"all", Pattern{}, 5},
		{"s", Pattern{S: iri("s1")}, 3},
		{"p", Pattern{P: iri("p1")}, 3},
		{"o", Pattern{O: iri("o1")}, 3},
		{"sp", Pattern{S: iri("s1"), P: iri("p1")}, 2},
		{"so", Pattern{S: iri("s1"), O: iri("o1")}, 2},
		{"po", Pattern{P: iri("p1"), O: iri("o1")}, 2},
		{"spo", Pattern{S: iri("s2"), P: iri("p2"), O: iri("o3")}, 1},
		{"missing", Pattern{S: iri("nope")}, 0},
	}
	for _, c := range cases {
		if got := st.Count(c.pat); got != c.want {
			t.Errorf("%s: Count = %d, want %d", c.name, got, c.want)
		}
		if got := len(st.Match(c.pat)); got != c.want {
			t.Errorf("%s: len(Match) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMatchSeesDeltaAndBase(t *testing.T) {
	st, err := Load([]rdf.Triple{tr("s", "p", "base")})
	if err != nil {
		t.Fatal(err)
	}
	st.Add(tr("s", "p", "delta")) // stays in delta buffer (below threshold)
	if got := st.Count(Pattern{S: iri("s")}); got != 2 {
		t.Errorf("Count = %d, want 2 (base+delta)", got)
	}
	st.Compact()
	if got := st.Count(Pattern{S: iri("s")}); got != 2 {
		t.Errorf("Count after Compact = %d, want 2", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	st := New()
	for i := 0; i < 10; i++ {
		st.Add(tr("s", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	st.ForEach(Pattern{}, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestSubjectsObjectsPredicates(t *testing.T) {
	st := New()
	st.AddAll([]rdf.Triple{
		tr("a", "type", "Person"),
		tr("b", "type", "Person"),
		tr("a", "knows", "b"),
	})
	if got := len(st.Subjects(iri("type"), iri("Person"))); got != 2 {
		t.Errorf("Subjects = %d, want 2", got)
	}
	if got := len(st.Objects(iri("a"), nil)); got != 2 {
		t.Errorf("Objects = %d, want 2", got)
	}
	if got := len(st.Predicates()); got != 2 {
		t.Errorf("Predicates = %d, want 2", got)
	}
}

func TestTermRoundTrip(t *testing.T) {
	st := New()
	st.Add(tr("s", "p", "o"))
	term, ok := st.Term(1)
	if !ok || term == nil {
		t.Error("Term(1) not found")
	}
	if _, ok := st.Term(0); ok {
		t.Error("Term(0) should not exist")
	}
	if _, ok := st.Term(999); ok {
		t.Error("Term(999) should not exist")
	}
}

func TestComputeStats(t *testing.T) {
	st := New()
	st.AddAll([]rdf.Triple{
		rdf.T(iri("a"), rdf.RDFType, iri("Person")),
		rdf.T(iri("b"), rdf.RDFType, iri("Person")),
		rdf.T(iri("c"), rdf.RDFType, iri("Place")),
		rdf.T(iri("a"), iri("name"), rdf.NewLiteral("Alice")),
	})
	s := st.ComputeStats()
	if s.Triples != 4 {
		t.Errorf("Triples = %d", s.Triples)
	}
	if s.Classes[iri("Person")] != 2 || s.Classes[iri("Place")] != 1 {
		t.Errorf("Classes = %v", s.Classes)
	}
	if len(s.Predicates) != 2 {
		t.Fatalf("Predicates = %v", s.Predicates)
	}
	// rdf:type has 3 triples, sorted first.
	if s.Predicates[0].Predicate != rdf.RDFType || s.Predicates[0].Triples != 3 {
		t.Errorf("top predicate = %+v", s.Predicates[0])
	}
	if s.Predicates[0].DistinctSubjects != 3 || s.Predicates[0].DistinctObjects != 2 {
		t.Errorf("type cardinalities = %+v", s.Predicates[0])
	}
	if s.Predicates[1].LiteralObjects != 1 {
		t.Errorf("literal count = %+v", s.Predicates[1])
	}
}

func TestDegreeHistogram(t *testing.T) {
	st := New()
	st.AddAll([]rdf.Triple{
		tr("a", "p", "x"), tr("a", "q", "y"), // a: degree 2
		tr("b", "p", "x"), // b: degree 1
	})
	h := st.DegreeHistogram()
	if h[2] != 1 || h[1] != 1 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

// buildRandom creates a reference map and a store with the same content,
// applying interleaved adds and deletes.
func buildRandom(seed int64, n int) (*Store, map[rdf.Triple]struct{}) {
	rng := rand.New(rand.NewSource(seed))
	st := New()
	ref := map[rdf.Triple]struct{}{}
	for i := 0; i < n; i++ {
		t := rdf.T(
			iri(fmt.Sprintf("s%d", rng.Intn(20))),
			iri(fmt.Sprintf("p%d", rng.Intn(5))),
			iri(fmt.Sprintf("o%d", rng.Intn(30))),
		)
		if rng.Float64() < 0.8 {
			st.Add(t)
			ref[t] = struct{}{}
		} else {
			st.Delete(t)
			delete(ref, t)
		}
		if rng.Float64() < 0.02 {
			st.Compact()
		}
	}
	return st, ref
}

// Property: after any interleaving of adds/deletes/compactions, the store's
// visible content equals a reference set, for every access path.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		st, ref := buildRandom(seed, 400)
		if st.Len() != len(ref) {
			return false
		}
		got := st.Triples()
		if len(got) != len(ref) {
			return false
		}
		for _, tr := range got {
			if _, ok := ref[tr]; !ok {
				return false
			}
		}
		// Spot-check pattern access paths against the reference.
		for i := 0; i < 20; i++ {
			s := iri(fmt.Sprintf("s%d", i%20))
			want := 0
			for r := range ref {
				if r.S == s {
					want++
				}
			}
			if st.Count(Pattern{S: s}) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: all three permutation indexes agree after compaction.
func TestIndexCoherenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		st, _ := buildRandom(seed, 300)
		st.Compact()
		st.mu.RLock()
		defer st.mu.RUnlock()
		if len(st.spo) != len(st.pos) || len(st.spo) != len(st.osp) {
			return false
		}
		if !sort.SliceIsSorted(st.spo, func(i, j int) bool { return lessSPO(st.spo[i], st.spo[j]) }) {
			return false
		}
		if !sort.SliceIsSorted(st.pos, func(i, j int) bool { return lessPOS(st.pos[i], st.pos[j]) }) {
			return false
		}
		if !sort.SliceIsSorted(st.osp, func(i, j int) bool { return lessOSP(st.osp[i], st.osp[j]) }) {
			return false
		}
		set := map[enc]struct{}{}
		for _, e := range st.spo {
			set[e] = struct{}{}
		}
		for _, e := range st.pos {
			if _, ok := set[e]; !ok {
				return false
			}
		}
		for _, e := range st.osp {
			if _, ok := set[e]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				st.Count(Pattern{P: iri("p")})
			}
			done <- true
		}()
	}
	go func() {
		for i := 0; i < 50; i++ {
			st.Add(tr(fmt.Sprintf("w%d", i), "p", "o"))
		}
		done <- true
	}()
	for i := 0; i < 9; i++ {
		<-done
	}
	if got := st.Count(Pattern{P: iri("p")}); got != 150 {
		t.Errorf("Count = %d, want 150", got)
	}
}

func TestLiteralObjects(t *testing.T) {
	st := New()
	st.Add(rdf.T(iri("s"), iri("age"), rdf.NewInteger(30)))
	st.Add(rdf.T(iri("s"), iri("age"), rdf.NewInteger(31)))
	got := st.Match(Pattern{P: iri("age"), O: rdf.NewInteger(30)})
	if len(got) != 1 {
		t.Errorf("literal object match = %d, want 1", len(got))
	}
}

func TestEstimateCount(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "common", "o"))
	}
	st.Add(tr("s0", "rare", "o"))
	st.Compact()
	if got := st.EstimateCount(Pattern{P: iri("common")}); got != 100 {
		t.Errorf("estimate(common) = %d, want 100", got)
	}
	if got := st.EstimateCount(Pattern{P: iri("rare")}); got != 1 {
		t.Errorf("estimate(rare) = %d, want 1", got)
	}
	if got := st.EstimateCount(Pattern{P: iri("absent")}); got != 0 {
		t.Errorf("estimate(absent) = %d, want 0", got)
	}
	if got := st.EstimateCount(Pattern{}); got != 101 {
		t.Errorf("estimate(all) = %d, want 101", got)
	}
	if got := st.EstimateCount(Pattern{S: iri("s0")}); got != 2 {
		t.Errorf("estimate(s0) = %d, want 2", got)
	}
	// Delta inflates estimates by its size (upper bound, never under).
	st.Add(tr("new", "common", "o2"))
	if got := st.EstimateCount(Pattern{P: iri("rare")}); got < 1 {
		t.Errorf("estimate with delta = %d, must not underestimate", got)
	}
}
