package store

import (
	"fmt"

	"github.com/lodviz/lodviz/internal/rdf"
)

// WALSink is the store's view of a write-ahead log. *wal.Log satisfies it;
// the indirection keeps the store free of a package dependency and lets
// tests inject failing or recording sinks.
//
// Ordering contract: the store calls AppendAdd/AppendDelete while holding
// its write lock, immediately before applying the same triples — so log
// order and apply order are identical, and replaying the log over any
// earlier state reproduces the live set. Sync is called after the lock is
// released (group commit batches concurrent committers there), and the
// store does not report a mutation as successful until Sync returns.
type WALSink interface {
	// AppendAdd logs a batch of inserted triples and returns its sequence.
	AppendAdd(triples []rdf.Triple) (uint64, error)
	// AppendDelete logs a batch of deleted triples and returns its sequence.
	AppendDelete(triples []rdf.Triple) (uint64, error)
	// Sync blocks until every record up to seq is durable.
	Sync(seq uint64) error
}

// SetWAL attaches (or, with nil, detaches) a write-ahead log. Attach it
// after replaying an existing log into the store and before accepting
// writes; mutations already applied are not retroactively logged.
func (st *Store) SetWAL(w WALSink) {
	st.mu.Lock()
	st.wal = w
	st.mu.Unlock()
}

// walAppendLocked logs one effective mutation batch (del selects the delete
// op), decoding the encoded triples back through the dictionary. It returns
// the record's sequence, or 0 with no error when no WAL is attached. Caller
// holds mu.
func (st *Store) walAppendLocked(del bool, encs []enc) (uint64, error) {
	if st.wal == nil {
		return 0, nil
	}
	ts := make([]rdf.Triple, len(encs))
	for i, e := range encs {
		p, ok := st.terms[e.p].(rdf.IRI)
		if !ok {
			return 0, fmt.Errorf("store: predicate ID %d is not an IRI", e.p)
		}
		ts[i] = rdf.Triple{S: st.terms[e.s], P: p, O: st.terms[e.o]}
	}
	var seq uint64
	var err error
	if del {
		seq, err = st.wal.AppendDelete(ts)
	} else {
		seq, err = st.wal.AppendAdd(ts)
	}
	if err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	return seq, nil
}
