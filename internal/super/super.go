// Package super implements hierarchical graph abstraction à la ASK-GraphView
// / GrouseFlocks (survey refs [1,8,9,95,143]): the graph is recursively
// partitioned into supernodes forming layers of abstraction, and the view is
// steered by expanding or collapsing supernodes under a node budget — the
// mechanism that lets a screen show a million-node graph as a few hundred
// aggregates.
package super

import (
	"fmt"
	"sort"

	"github.com/lodviz/lodviz/internal/cluster"
	"github.com/lodviz/lodviz/internal/graph"
)

// SuperNode is one abstraction node: either a leaf (one base node) or a
// cluster of children.
type SuperNode struct {
	// ID is the supernode's index within the hierarchy.
	ID int
	// Base is the underlying graph node for leaves, -1 for internal nodes.
	Base graph.NodeID
	// Children are child supernode ids (empty for leaves).
	Children []int
	// Size is the number of base nodes underneath.
	Size int
	// Depth is the distance from the root.
	Depth int
	// InternalEdges counts base edges with both endpoints inside.
	InternalEdges int
}

// Hierarchy is a recursive partition of a base graph.
type Hierarchy struct {
	g     *graph.Graph
	Nodes []*SuperNode
	Root  int
}

// Options tune hierarchy construction.
type Options struct {
	// MaxLeafSize stops recursion when a cluster has at most this many base
	// nodes (default 16).
	MaxLeafSize int
	// MaxDepth bounds recursion (default 12).
	MaxDepth int
	// MaxChildren caps a supernode's fan-out (default 12): community
	// detection on hub-dominated graphs can emit hundreds of communities,
	// which would make expand steps useless; the smallest communities are
	// merged until the cap holds.
	MaxChildren int
	// Seed makes partitioning deterministic.
	Seed int64
}

func (o *Options) normalize() {
	if o.MaxLeafSize < 1 {
		o.MaxLeafSize = 16
	}
	if o.MaxDepth < 1 {
		o.MaxDepth = 12
	}
	if o.MaxChildren < 2 {
		o.MaxChildren = 12
	}
}

// Build constructs a supernode hierarchy by recursive modularity
// partitioning.
func Build(g *graph.Graph, opts Options) *Hierarchy {
	opts.normalize()
	h := &Hierarchy{g: g}
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	h.Root = h.build(all, 0, opts)
	return h
}

// build recursively partitions members, returning the supernode id.
func (h *Hierarchy) build(members []graph.NodeID, depth int, opts Options) int {
	id := len(h.Nodes)
	sn := &SuperNode{ID: id, Base: -1, Size: len(members), Depth: depth}
	h.Nodes = append(h.Nodes, sn)

	if len(members) == 1 {
		sn.Base = members[0]
		return id
	}
	if len(members) <= opts.MaxLeafSize || depth >= opts.MaxDepth {
		// Flat leaf cluster: children are singleton leaves.
		for _, m := range members {
			cid := len(h.Nodes)
			h.Nodes = append(h.Nodes, &SuperNode{ID: cid, Base: m, Size: 1, Depth: depth + 1})
			sn.Children = append(sn.Children, cid)
		}
		sn.InternalEdges = h.countInternal(members)
		return id
	}
	// Partition the induced subgraph by modularity.
	local := map[graph.NodeID]int{}
	for i, m := range members {
		local[m] = i
	}
	var edges [][2]int
	for _, m := range members {
		for _, ei := range h.g.Out[m] {
			e := h.g.Edges[ei]
			if j, ok := local[e.To]; ok {
				edges = append(edges, [2]int{local[m], j})
			}
		}
	}
	cg := cluster.NewGraph(len(members), edges)
	comm := cluster.GreedyModularity(cg, opts.Seed+int64(depth))
	k := cluster.NumCommunities(comm)
	if k <= 1 {
		// No structure found: split evenly to guarantee progress.
		comm = make([]int, len(members))
		half := (len(members) + 1) / 2
		for i := range comm {
			if i >= half {
				comm[i] = 1
			}
		}
		k = 2
	}
	parts := make([][]graph.NodeID, k)
	for i, m := range members {
		parts[comm[i]] = append(parts[comm[i]], m)
	}
	parts = capFanOut(parts, opts.MaxChildren)
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		cid := h.build(part, depth+1, opts)
		sn.Children = append(sn.Children, cid)
	}
	sn.InternalEdges = h.countInternal(members)
	return id
}

// capFanOut merges the smallest partitions until at most max remain, so a
// single expand step never floods the view.
func capFanOut(parts [][]graph.NodeID, max int) [][]graph.NodeID {
	var nonEmpty [][]graph.NodeID
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) <= max {
		return nonEmpty
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return len(nonEmpty[i]) > len(nonEmpty[j]) })
	kept := nonEmpty[:max-1]
	var rest []graph.NodeID
	for _, p := range nonEmpty[max-1:] {
		rest = append(rest, p...)
	}
	return append(kept, rest)
}

func (h *Hierarchy) countInternal(members []graph.NodeID) int {
	in := map[graph.NodeID]bool{}
	for _, m := range members {
		in[m] = true
	}
	n := 0
	for _, m := range members {
		for _, ei := range h.g.Out[m] {
			if in[h.g.Edges[ei].To] {
				n++
			}
		}
	}
	return n
}

// View is a frontier of the hierarchy: the set of supernodes currently on
// screen, plus the aggregated edges between them.
type View struct {
	h *Hierarchy
	// Visible lists the displayed supernode ids.
	Visible []int
	visible map[int]bool
}

// NewView starts a view showing only the root.
func (h *Hierarchy) NewView() *View {
	v := &View{h: h, visible: map[int]bool{}}
	v.show(h.Root)
	return v
}

func (v *View) show(id int) {
	if !v.visible[id] {
		v.visible[id] = true
		v.Visible = append(v.Visible, id)
	}
}

func (v *View) hide(id int) {
	if v.visible[id] {
		delete(v.visible, id)
		for i, x := range v.Visible {
			if x == id {
				v.Visible = append(v.Visible[:i], v.Visible[i+1:]...)
				break
			}
		}
	}
}

// Expand replaces a visible supernode with its children. It reports whether
// the node was visible and expandable.
func (v *View) Expand(id int) bool {
	if !v.visible[id] {
		return false
	}
	sn := v.h.Nodes[id]
	if len(sn.Children) == 0 {
		return false
	}
	v.hide(id)
	for _, c := range sn.Children {
		v.show(c)
	}
	return true
}

// Collapse replaces a visible supernode's siblings (and itself) with their
// parent. It reports success.
func (v *View) Collapse(id int) bool {
	parent := v.h.parentOf(id)
	if parent < 0 {
		return false
	}
	for _, c := range v.h.Nodes[parent].Children {
		v.hide(c)
	}
	v.show(parent)
	return true
}

// ExpandToBudget greedily expands the largest visible supernodes while the
// frontier stays within budget — "give me the most detailed view that fits
// my screen".
func (v *View) ExpandToBudget(budget int) {
	for {
		// Find the largest expandable visible node.
		best, bestSize := -1, 1
		for _, id := range v.Visible {
			sn := v.h.Nodes[id]
			if len(sn.Children) > 0 && sn.Size > bestSize {
				next := len(v.Visible) - 1 + len(sn.Children)
				if next <= budget {
					best, bestSize = id, sn.Size
				}
			}
		}
		if best < 0 {
			return
		}
		v.Expand(best)
	}
}

// SuperEdge is an aggregated edge between two visible supernodes.
type SuperEdge struct {
	From, To int
	// Weight is the number of base edges aggregated.
	Weight int
}

// Edges computes the aggregated edges between the view's visible supernodes.
func (v *View) Edges() []SuperEdge {
	// Map each base node to its visible ancestor.
	owner := make(map[graph.NodeID]int)
	for _, id := range v.Visible {
		v.h.eachBase(id, func(b graph.NodeID) {
			owner[b] = id
		})
	}
	agg := map[[2]int]int{}
	for _, e := range v.h.g.Edges {
		fo, ok1 := owner[e.From]
		to, ok2 := owner[e.To]
		if !ok1 || !ok2 || fo == to {
			continue
		}
		agg[[2]int{fo, to}]++
	}
	out := make([]SuperEdge, 0, len(agg))
	for k, w := range agg {
		out = append(out, SuperEdge{From: k[0], To: k[1], Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// eachBase visits every base node under a supernode.
func (h *Hierarchy) eachBase(id int, fn func(graph.NodeID)) {
	sn := h.Nodes[id]
	if sn.Base >= 0 {
		fn(sn.Base)
		return
	}
	for _, c := range sn.Children {
		h.eachBase(c, fn)
	}
}

// parentOf finds a node's parent (linear scan; hierarchies are small
// relative to the base graph).
func (h *Hierarchy) parentOf(id int) int {
	for _, sn := range h.Nodes {
		for _, c := range sn.Children {
			if c == id {
				return sn.ID
			}
		}
	}
	return -1
}

// Depth returns the hierarchy's maximum depth.
func (h *Hierarchy) Depth() int {
	max := 0
	for _, sn := range h.Nodes {
		if sn.Depth > max {
			max = sn.Depth
		}
	}
	return max
}

// CheckInvariants verifies structural soundness: sizes add up and every base
// node is covered exactly once. Used by property tests.
func (h *Hierarchy) CheckInvariants() error {
	seen := map[graph.NodeID]int{}
	h.eachBase(h.Root, func(b graph.NodeID) { seen[b]++ })
	if len(seen) != h.g.NumNodes() {
		return fmt.Errorf("super: hierarchy covers %d of %d nodes", len(seen), h.g.NumNodes())
	}
	for b, c := range seen {
		if c != 1 {
			return fmt.Errorf("super: node %d covered %d times", b, c)
		}
	}
	for _, sn := range h.Nodes {
		if sn.Base >= 0 {
			continue
		}
		total := 0
		for _, c := range sn.Children {
			total += h.Nodes[c].Size
		}
		if sn.ID == h.Root || len(sn.Children) > 0 {
			if total != sn.Size {
				return fmt.Errorf("super: node %d size %d != children sum %d", sn.ID, sn.Size, total)
			}
		}
	}
	return nil
}
