package super

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/rdf"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://e/" + s) }

// cliqueRing builds k cliques of size s, ring-connected.
func cliqueRing(k, s int) *graph.Graph {
	g := graph.New()
	name := func(c, i int) rdf.IRI { return iri(fmt.Sprintf("c%dn%d", c, i)) }
	for c := 0; c < k; c++ {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.AddEdge(name(c, i), name(c, j), "http://e/p")
			}
		}
	}
	for c := 0; c < k; c++ {
		g.AddEdge(name(c, 0), name((c+1)%k, 0), "http://e/bridge")
	}
	return g
}

func TestBuildCoversAllNodes(t *testing.T) {
	g := cliqueRing(4, 8)
	h := Build(g, Options{MaxLeafSize: 4, Seed: 1})
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Nodes[h.Root].Size != g.NumNodes() {
		t.Errorf("root size = %d, want %d", h.Nodes[h.Root].Size, g.NumNodes())
	}
}

func TestViewExpandCollapse(t *testing.T) {
	g := cliqueRing(4, 8)
	h := Build(g, Options{MaxLeafSize: 4, Seed: 1})
	v := h.NewView()
	if len(v.Visible) != 1 || v.Visible[0] != h.Root {
		t.Fatalf("initial view = %v", v.Visible)
	}
	if !v.Expand(h.Root) {
		t.Fatal("Expand(root) failed")
	}
	if len(v.Visible) < 2 {
		t.Errorf("after expand: %d visible", len(v.Visible))
	}
	// Total size of visible nodes must equal the graph size.
	total := 0
	for _, id := range v.Visible {
		total += h.Nodes[id].Size
	}
	if total != g.NumNodes() {
		t.Errorf("visible sizes sum to %d, want %d", total, g.NumNodes())
	}
	// Collapse back.
	if !v.Collapse(v.Visible[0]) {
		t.Fatal("Collapse failed")
	}
	if len(v.Visible) != 1 || v.Visible[0] != h.Root {
		t.Errorf("after collapse: %v", v.Visible)
	}
}

func TestExpandToBudget(t *testing.T) {
	g := cliqueRing(8, 16) // 128 nodes
	h := Build(g, Options{MaxLeafSize: 4, Seed: 2})
	v := h.NewView()
	v.ExpandToBudget(20)
	if len(v.Visible) > 20 {
		t.Errorf("visible = %d > budget 20", len(v.Visible))
	}
	if len(v.Visible) < 2 {
		t.Errorf("budget expansion did nothing: %d visible", len(v.Visible))
	}
	total := 0
	for _, id := range v.Visible {
		total += h.Nodes[id].Size
	}
	if total != g.NumNodes() {
		t.Errorf("coverage = %d, want %d", total, g.NumNodes())
	}
}

func TestViewEdgesAggregateWeights(t *testing.T) {
	g := cliqueRing(3, 5)
	h := Build(g, Options{MaxLeafSize: 5, Seed: 3})
	v := h.NewView()
	v.Expand(h.Root)
	edges := v.Edges()
	// With the root expanded there must be some aggregated edges between
	// visible supernodes (the ring bridges).
	if len(edges) == 0 {
		t.Fatal("no aggregated edges")
	}
	for _, e := range edges {
		if e.Weight < 1 {
			t.Errorf("edge weight = %d", e.Weight)
		}
		if e.From == e.To {
			t.Error("self superedge")
		}
	}
}

func TestExpandLeafFails(t *testing.T) {
	g := cliqueRing(2, 4)
	h := Build(g, Options{MaxLeafSize: 2, Seed: 1})
	v := h.NewView()
	// Fully expand.
	for {
		expanded := false
		for _, id := range append([]int(nil), v.Visible...) {
			if v.Expand(id) {
				expanded = true
			}
		}
		if !expanded {
			break
		}
	}
	// All visible are leaves now; expanding any must fail.
	for _, id := range v.Visible {
		if v.Expand(id) {
			t.Fatalf("expanded a leaf %d", id)
		}
	}
	if len(v.Visible) != g.NumNodes() {
		t.Errorf("full expansion shows %d, want %d", len(v.Visible), g.NumNodes())
	}
}

func TestCollapseRootFails(t *testing.T) {
	g := cliqueRing(2, 4)
	h := Build(g, Options{Seed: 1})
	v := h.NewView()
	if v.Collapse(h.Root) {
		t.Error("collapsed the root")
	}
}

// Property: hierarchies over random graphs always satisfy the invariants,
// and any sequence of expands keeps coverage exact.
func TestHierarchyInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + int(seed%50+50)%50
		g := graph.New()
		for i := 0; i < n; i++ {
			g.Node(iri(fmt.Sprintf("n%d", i)))
		}
		for i := 0; i < n*2; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			g.AddEdge(iri(fmt.Sprintf("n%d", a)), iri(fmt.Sprintf("n%d", b)), "http://e/p")
		}
		h := Build(g, Options{MaxLeafSize: 6, Seed: seed})
		if err := h.CheckInvariants(); err != nil {
			return false
		}
		v := h.NewView()
		for step := 0; step < 10; step++ {
			if len(v.Visible) == 0 {
				return false
			}
			v.Expand(v.Visible[rng.Intn(len(v.Visible))])
			total := 0
			for _, id := range v.Visible {
				total += h.Nodes[id].Size
			}
			if total != g.NumNodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDepthBounded(t *testing.T) {
	g := cliqueRing(4, 4)
	h := Build(g, Options{MaxLeafSize: 2, MaxDepth: 3, Seed: 1})
	if d := h.Depth(); d > 4 { // +1 for singleton leaf layer
		t.Errorf("depth = %d exceeds bound", d)
	}
}
