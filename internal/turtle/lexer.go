// Package turtle parses the Terse RDF Triple Language (Turtle, RDF 1.1). It
// supports the subset used by real-world Linked Open Data dumps: prefix and
// base directives, prefixed names, the 'a' keyword, predicate and object
// lists, blank node property lists, collections, and the numeric / boolean /
// string literal shorthands.
package turtle

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIRIRef
	tokPrefixedName // ex:foo or ex: or :foo
	tokBlankLabel   // _:b1
	tokString       // string literal body (already unescaped)
	tokInteger
	tokDecimal
	tokDouble
	tokBoolean
	tokA          // keyword a
	tokPrefixDecl // @prefix or PREFIX
	tokBaseDecl   // @base or BASE
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokLangTag    // @en
	tokDatatypeMk // ^^
	tokAnon       // []
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokIRIRef: "IRI", tokPrefixedName: "prefixed name",
		tokBlankLabel: "blank node", tokString: "string", tokInteger: "integer",
		tokDecimal: "decimal", tokDouble: "double", tokBoolean: "boolean",
		tokA: "'a'", tokPrefixDecl: "@prefix", tokBaseDecl: "@base",
		tokDot: "'.'", tokSemicolon: "';'", tokComma: "','",
		tokLBracket: "'['", tokRBracket: "']'", tokLParen: "'('",
		tokRParen: "')'", tokLangTag: "language tag", tokDatatypeMk: "'^^'",
		tokAnon: "'[]'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line}, nil
	}
	start := lx.line
	c := lx.src[lx.pos]
	switch c {
	case '<':
		return lx.lexIRIRef()
	case '"', '\'':
		return lx.lexString(c)
	case '.':
		// Distinguish statement dot from leading decimal point: a dot
		// followed by a digit is numeric.
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			return lx.lexNumber()
		}
		lx.pos++
		return token{kind: tokDot, line: start}, nil
	case ';':
		lx.pos++
		return token{kind: tokSemicolon, line: start}, nil
	case ',':
		lx.pos++
		return token{kind: tokComma, line: start}, nil
	case '(':
		lx.pos++
		return token{kind: tokLParen, line: start}, nil
	case ')':
		lx.pos++
		return token{kind: tokRParen, line: start}, nil
	case '[':
		// Look ahead for ANON: '[' ws* ']'
		j := lx.pos + 1
		for j < len(lx.src) && (lx.src[j] == ' ' || lx.src[j] == '\t') {
			j++
		}
		if j < len(lx.src) && lx.src[j] == ']' {
			lx.pos = j + 1
			return token{kind: tokAnon, line: start}, nil
		}
		lx.pos++
		return token{kind: tokLBracket, line: start}, nil
	case ']':
		lx.pos++
		return token{kind: tokRBracket, line: start}, nil
	case '@':
		return lx.lexAtKeywordOrLang()
	case '^':
		if strings.HasPrefix(lx.src[lx.pos:], "^^") {
			lx.pos += 2
			return token{kind: tokDatatypeMk, line: start}, nil
		}
		return token{}, lx.errf("unexpected '^'")
	case '_':
		return lx.lexBlankLabel()
	case '+', '-':
		return lx.lexNumber()
	}
	if isDigit(c) {
		return lx.lexNumber()
	}
	// Keywords, booleans, prefixed names.
	return lx.lexNameOrKeyword()
}

func (lx *lexer) lexIRIRef() (token, error) {
	start := lx.line
	end := strings.IndexByte(lx.src[lx.pos:], '>')
	if end < 0 {
		return token{}, lx.errf("unterminated IRI reference")
	}
	raw := lx.src[lx.pos+1 : lx.pos+end]
	lx.pos += end + 1
	if strings.ContainsAny(raw, " \n\t") {
		return token{}, lx.errf("whitespace in IRI reference %q", raw)
	}
	unescaped, err := unescapeTurtle(raw, false)
	if err != nil {
		return token{}, lx.errf("%v", err)
	}
	return token{kind: tokIRIRef, text: unescaped, line: start}, nil
}

// lexString handles "...", '...', """...""" and ”'...”'.
func (lx *lexer) lexString(quote byte) (token, error) {
	start := lx.line
	long := strings.HasPrefix(lx.src[lx.pos:], strings.Repeat(string(quote), 3))
	var body string
	if long {
		lx.pos += 3
		end := strings.Index(lx.src[lx.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return token{}, lx.errf("unterminated long string")
		}
		body = lx.src[lx.pos : lx.pos+end]
		lx.line += strings.Count(body, "\n")
		lx.pos += end + 3
	} else {
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf("unterminated string")
			}
			c := lx.src[lx.pos]
			if c == quote {
				lx.pos++
				break
			}
			if c == '\n' {
				return token{}, lx.errf("newline in short string")
			}
			if c == '\\' {
				if lx.pos+1 >= len(lx.src) {
					return token{}, lx.errf("dangling escape")
				}
				b.WriteByte(c)
				b.WriteByte(lx.src[lx.pos+1])
				lx.pos += 2
				continue
			}
			b.WriteByte(c)
			lx.pos++
		}
		body = b.String()
	}
	unescaped, err := unescapeTurtle(body, true)
	if err != nil {
		return token{}, lx.errf("%v", err)
	}
	return token{kind: tokString, text: unescaped, line: start}, nil
}

func (lx *lexer) lexAtKeywordOrLang() (token, error) {
	start := lx.line
	lx.pos++ // consume '@'
	begin := lx.pos
	for lx.pos < len(lx.src) && (isAlpha(lx.src[lx.pos]) || lx.src[lx.pos] == '-') {
		lx.pos++
	}
	word := lx.src[begin:lx.pos]
	switch word {
	case "prefix":
		return token{kind: tokPrefixDecl, line: start}, nil
	case "base":
		return token{kind: tokBaseDecl, line: start}, nil
	case "":
		return token{}, lx.errf("empty language tag")
	}
	return token{kind: tokLangTag, text: word, line: start}, nil
}

func (lx *lexer) lexBlankLabel() (token, error) {
	start := lx.line
	if !strings.HasPrefix(lx.src[lx.pos:], "_:") {
		return token{}, lx.errf("expected blank node label")
	}
	lx.pos += 2
	begin := lx.pos
	for lx.pos < len(lx.src) && isPNChar(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	// A label may not end with '.': trailing dots are statement terminators.
	for lx.pos > begin && lx.src[lx.pos-1] == '.' {
		lx.pos--
	}
	if lx.pos == begin {
		return token{}, lx.errf("empty blank node label")
	}
	return token{kind: tokBlankLabel, text: lx.src[begin:lx.pos], line: start}, nil
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.line
	begin := lx.pos
	if lx.peekByte() == '+' || lx.peekByte() == '-' {
		lx.pos++
	}
	digits := 0
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
		digits++
	}
	kind := tokInteger
	if lx.peekByte() == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
		kind = tokDecimal
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
			digits++
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		kind = tokDouble
		lx.pos++
		if c := lx.peekByte(); c == '+' || c == '-' {
			lx.pos++
		}
		expDigits := 0
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
			expDigits++
		}
		if expDigits == 0 {
			return token{}, lx.errf("malformed double exponent")
		}
	}
	if digits == 0 {
		return token{}, lx.errf("malformed numeric literal")
	}
	return token{kind: kind, text: lx.src[begin:lx.pos], line: start}, nil
}

// lexNameOrKeyword scans prefixed names (pfx:local, :local, pfx:), the 'a'
// keyword, booleans, and SPARQL-style PREFIX/BASE directives.
func (lx *lexer) lexNameOrKeyword() (token, error) {
	start := lx.line
	begin := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isPNChar(r) && r != ':' && r != '%' && r != '\\' {
			break
		}
		if r == '\\' && lx.pos+1 < len(lx.src) {
			// local-name escape like \~ — keep both bytes.
			lx.pos += 2
			continue
		}
		lx.pos += size
	}
	// A name may not end with '.': trailing dots terminate the statement.
	for lx.pos > begin && lx.src[lx.pos-1] == '.' {
		lx.pos--
	}
	word := lx.src[begin:lx.pos]
	if word == "" {
		return token{}, lx.errf("unexpected character %q", lx.src[begin])
	}
	switch word {
	case "a":
		return token{kind: tokA, line: start}, nil
	case "true", "false":
		return token{kind: tokBoolean, text: word, line: start}, nil
	}
	switch strings.ToUpper(word) {
	case "PREFIX":
		return token{kind: tokPrefixDecl, line: start}, nil
	case "BASE":
		return token{kind: tokBaseDecl, line: start}, nil
	}
	if !strings.Contains(word, ":") {
		return token{}, lx.errf("unknown keyword or missing colon in %q", word)
	}
	return token{kind: tokPrefixedName, text: word, line: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

// isPNChar approximates Turtle's PN_CHARS production, accepting letters,
// digits, underscore, hyphen, dot and any non-ASCII letter.
func isPNChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' ||
		r >= '0' && r <= '9' ||
		r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
		r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r))
}

// unescapeTurtle resolves string escapes (\n, \t, \uXXXX, \UXXXXXXXX, ...).
// When inString is false only \u escapes are allowed (IRI references).
func unescapeTurtle(s string, inString bool) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape")
		}
		c := s[i+1]
		switch c {
		case 'u', 'U':
			n := 4
			if c == 'U' {
				n = 8
			}
			if i+2+n > len(s) {
				return "", fmt.Errorf("short unicode escape")
			}
			var v rune
			for _, h := range s[i+2 : i+2+n] {
				d, ok := hexVal(byte(h))
				if !ok {
					return "", fmt.Errorf("invalid hex digit %q", h)
				}
				v = v<<4 | d
			}
			b.WriteRune(v)
			i += 2 + n
		case 't', 'n', 'r', 'b', 'f', '"', '\'', '\\':
			if !inString && c != '\\' {
				return "", fmt.Errorf("escape \\%c not allowed in IRI", c)
			}
			b.WriteByte(map[byte]byte{'t': '\t', 'n': '\n', 'r': '\r', 'b': '\b', 'f': '\f', '"': '"', '\'': '\'', '\\': '\\'}[c])
			i += 2
		default:
			if inString {
				return "", fmt.Errorf("invalid escape \\%c", c)
			}
			// Local-name escapes outside strings: keep the character.
			b.WriteByte(c)
			i += 2
		}
	}
	return b.String(), nil
}

func hexVal(c byte) (rune, bool) {
	switch {
	case c >= '0' && c <= '9':
		return rune(c - '0'), true
	case c >= 'a' && c <= 'f':
		return rune(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return rune(c-'A') + 10, true
	}
	return 0, false
}
