package turtle

import (
	"fmt"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Parser parses a Turtle document into triples.
type Parser struct {
	lx       *lexer
	tok      token
	peeked   *token
	prefixes map[string]string
	base     string
	out      []rdf.Triple
	bnodeSeq int
}

// Parse parses src as a Turtle document and returns its triples. Prefix
// declarations inside the document are honored; extraPrefixes (may be nil)
// provides out-of-band prefixes, as SPARQL endpoints commonly do.
func Parse(src string, extraPrefixes map[string]string) ([]rdf.Triple, error) {
	p := &Parser{lx: newLexer(src), prefixes: map[string]string{}}
	for k, v := range extraPrefixes {
		p.prefixes[k] = v
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		if err := p.parseStatement(); err != nil {
			return nil, err
		}
	}
	return p.out, nil
}

// ParseString parses src with no extra prefixes.
func ParseString(src string) ([]rdf.Triple, error) { return Parse(src, nil) }

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *Parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errf("expected %v, found %v", k, p.tok.kind)
	}
	return p.advance()
}

func (p *Parser) freshBlank() rdf.BlankNode {
	p.bnodeSeq++
	return rdf.BlankNode(fmt.Sprintf("genid%d", p.bnodeSeq))
}

func (p *Parser) emit(s rdf.Term, pr rdf.IRI, o rdf.Term) {
	p.out = append(p.out, rdf.Triple{S: s, P: pr, O: o})
}

func (p *Parser) parseStatement() error {
	switch p.tok.kind {
	case tokPrefixDecl:
		return p.parsePrefix()
	case tokBaseDecl:
		return p.parseBase()
	default:
		if err := p.parseTriples(); err != nil {
			return err
		}
		return p.expect(tokDot)
	}
}

func (p *Parser) parsePrefix() error {
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokPrefixedName {
		return p.errf("expected prefix label, found %v", p.tok.kind)
	}
	label := strings.TrimSuffix(p.tok.text, ":")
	if strings.Contains(label, ":") {
		return p.errf("malformed prefix label %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRIRef {
		return p.errf("expected namespace IRI, found %v", p.tok.kind)
	}
	p.prefixes[label] = p.resolveIRI(p.tok.text)
	if err := p.advance(); err != nil {
		return err
	}
	// '@prefix' requires a terminating dot; SPARQL-style 'PREFIX' forbids it.
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

func (p *Parser) parseBase() error {
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRIRef {
		return p.errf("expected base IRI, found %v", p.tok.kind)
	}
	p.base = p.resolveIRI(p.tok.text)
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind == tokDot {
		return p.advance()
	}
	return nil
}

func (p *Parser) parseTriples() error {
	switch p.tok.kind {
	case tokLBracket:
		// Blank node property list as subject.
		subj, err := p.parseBlankNodePropertyList()
		if err != nil {
			return err
		}
		// Optional predicateObjectList follows.
		if p.tok.kind != tokDot {
			return p.parsePredicateObjectList(subj)
		}
		return nil
	default:
		subj, err := p.parseSubject()
		if err != nil {
			return err
		}
		return p.parsePredicateObjectList(subj)
	}
}

func (p *Parser) parseSubject() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef, tokPrefixedName:
		return p.parseIRITerm()
	case tokBlankLabel:
		b := rdf.BlankNode(p.tok.text)
		return b, p.advance()
	case tokAnon:
		b := p.freshBlank()
		return b, p.advance()
	case tokLParen:
		return p.parseCollection()
	default:
		return nil, p.errf("expected subject, found %v", p.tok.kind)
	}
}

func (p *Parser) parseIRITerm() (rdf.IRI, error) {
	switch p.tok.kind {
	case tokIRIRef:
		iri := rdf.IRI(p.resolveIRI(p.tok.text))
		return iri, p.advance()
	case tokPrefixedName:
		iri, err := p.expandPrefixed(p.tok.text)
		if err != nil {
			return "", err
		}
		return iri, p.advance()
	default:
		return "", p.errf("expected IRI, found %v", p.tok.kind)
	}
}

func (p *Parser) expandPrefixed(name string) (rdf.IRI, error) {
	idx := strings.Index(name, ":")
	if idx < 0 {
		return "", p.errf("not a prefixed name: %q", name)
	}
	prefix, local := name[:idx], name[idx+1:]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return rdf.IRI(ns + local), nil
}

func (p *Parser) parsePredicateObjectList(subj rdf.Term) error {
	for {
		var pred rdf.IRI
		var err error
		if p.tok.kind == tokA {
			pred = rdf.RDFType
			if err := p.advance(); err != nil {
				return err
			}
		} else {
			pred, err = p.parseIRITerm()
			if err != nil {
				return err
			}
		}
		if err := p.parseObjectList(subj, pred); err != nil {
			return err
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		// Consume one or more semicolons; a trailing ';' before '.' or ']' is legal.
		for p.tok.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind == tokDot || p.tok.kind == tokRBracket {
			return nil
		}
	}
}

func (p *Parser) parseObjectList(subj rdf.Term, pred rdf.IRI) error {
	for {
		obj, err := p.parseObject()
		if err != nil {
			return err
		}
		p.emit(subj, pred, obj)
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *Parser) parseObject() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef, tokPrefixedName:
		return p.parseIRITerm()
	case tokBlankLabel:
		b := rdf.BlankNode(p.tok.text)
		return b, p.advance()
	case tokAnon:
		b := p.freshBlank()
		return b, p.advance()
	case tokLBracket:
		return p.parseBlankNodePropertyList()
	case tokLParen:
		return p.parseCollection()
	case tokString:
		return p.parseLiteralFromString()
	case tokInteger:
		l := rdf.NewTypedLiteral(p.tok.text, rdf.XSDInteger)
		return l, p.advance()
	case tokDecimal:
		l := rdf.NewTypedLiteral(p.tok.text, rdf.XSDDecimal)
		return l, p.advance()
	case tokDouble:
		l := rdf.NewTypedLiteral(p.tok.text, rdf.XSDDouble)
		return l, p.advance()
	case tokBoolean:
		l := rdf.NewTypedLiteral(p.tok.text, rdf.XSDBoolean)
		return l, p.advance()
	default:
		return nil, p.errf("expected object, found %v", p.tok.kind)
	}
}

func (p *Parser) parseLiteralFromString() (rdf.Term, error) {
	lex := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokLangTag:
		l := rdf.NewLangLiteral(lex, p.tok.text)
		return l, p.advance()
	case tokDatatypeMk:
		if err := p.advance(); err != nil {
			return nil, err
		}
		dt, err := p.parseIRITerm()
		if err != nil {
			return nil, err
		}
		return rdf.NewTypedLiteral(lex, dt), nil
	default:
		return rdf.NewLiteral(lex), nil
	}
}

// parseBlankNodePropertyList parses '[' predicateObjectList ']' and returns
// the fresh blank node standing for it.
func (p *Parser) parseBlankNodePropertyList() (rdf.Term, error) {
	if err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	b := p.freshBlank()
	if err := p.parsePredicateObjectList(b); err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return b, nil
}

// parseCollection parses '(' object* ')' into an rdf:first/rdf:rest list and
// returns its head (rdf:nil when empty).
func (p *Parser) parseCollection() (rdf.Term, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var head, tail rdf.Term
	for p.tok.kind != tokRParen {
		obj, err := p.parseObject()
		if err != nil {
			return nil, err
		}
		cell := p.freshBlank()
		if head == nil {
			head = cell
		} else {
			p.emit(tail, rdf.RDFRest, cell)
		}
		p.emit(cell, rdf.RDFFirst, obj)
		tail = cell
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	if head == nil {
		return rdf.RDFNil, nil
	}
	p.emit(tail, rdf.RDFRest, rdf.RDFNil)
	return head, nil
}

// resolveIRI resolves iri against the current @base using a pragmatic subset
// of RFC 3986: absolute IRIs (with a scheme) pass through; fragment-only,
// absolute-path and relative-path references are joined to the base.
func (p *Parser) resolveIRI(iri string) string {
	if p.base == "" || hasScheme(iri) {
		return iri
	}
	switch {
	case iri == "":
		return p.base
	case strings.HasPrefix(iri, "#"):
		if i := strings.IndexByte(p.base, '#'); i >= 0 {
			return p.base[:i] + iri
		}
		return p.base + iri
	case strings.HasPrefix(iri, "/"):
		// Keep scheme://authority of base.
		if i := strings.Index(p.base, "://"); i >= 0 {
			rest := p.base[i+3:]
			if j := strings.IndexByte(rest, '/'); j >= 0 {
				return p.base[:i+3+j] + iri
			}
		}
		return strings.TrimSuffix(p.base, "/") + iri
	default:
		// Relative path: replace everything after the last '/'.
		if i := strings.LastIndexByte(p.base, '/'); i >= 0 {
			return p.base[:i+1] + iri
		}
		return p.base + iri
	}
}

func hasScheme(iri string) bool {
	for i := 0; i < len(iri); i++ {
		c := iri[i]
		if c == ':' {
			return i > 0
		}
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && (c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.')) {
			return false
		}
	}
	return false
}
