package turtle

import (
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func mustParse(t *testing.T, src string) []rdf.Triple {
	t.Helper()
	ts, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", src, err)
	}
	return ts
}

func TestPrefixAndBasicTriples(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
ex:alice foaf:name "Alice" .
ex:alice foaf:knows ex:bob .
`
	ts := mustParse(t, src)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].S != rdf.IRI("http://example.org/alice") {
		t.Errorf("subject = %v", ts[0].S)
	}
	if ts[0].P != rdf.IRI("http://xmlns.com/foaf/0.1/name") {
		t.Errorf("predicate = %v", ts[0].P)
	}
	if ts[1].O != rdf.IRI("http://example.org/bob") {
		t.Errorf("object = %v", ts[1].O)
	}
}

func TestSPARQLStylePrefix(t *testing.T) {
	src := `
PREFIX ex: <http://example.org/>
ex:s ex:p ex:o .
`
	ts := mustParse(t, src)
	if len(ts) != 1 || ts[0].S != rdf.IRI("http://example.org/s") {
		t.Errorf("triples = %v", ts)
	}
}

func TestAKeywordAndLists(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:alice a ex:Person ;
    ex:age 30 ;
    ex:likes ex:bob, ex:carol .
`
	ts := mustParse(t, src)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4: %v", len(ts), ts)
	}
	if ts[0].P != rdf.RDFType {
		t.Errorf("'a' not expanded: %v", ts[0].P)
	}
	if got := ts[1].O.(rdf.Literal); got.Datatype != rdf.XSDInteger || got.Lexical != "30" {
		t.Errorf("integer sugar = %v", got)
	}
	if ts[2].O != rdf.IRI("http://example.org/bob") || ts[3].O != rdf.IRI("http://example.org/carol") {
		t.Errorf("object list wrong: %v %v", ts[2].O, ts[3].O)
	}
}

func TestLiteralSugar(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 6.02e23 ;
     ex:bool true ;
     ex:str "plain" ;
     ex:lang "bonjour"@fr ;
     ex:typed "2016-03-15"^^<http://www.w3.org/2001/XMLSchema#date> .
`
	ts := mustParse(t, src)
	want := map[string]rdf.IRI{
		"42": rdf.XSDInteger, "-7": rdf.XSDInteger, "3.14": rdf.XSDDecimal,
		"6.02e23": rdf.XSDDouble, "true": rdf.XSDBoolean, "plain": rdf.XSDString,
		"2016-03-15": rdf.XSDDate,
	}
	found := 0
	for _, tr := range ts {
		l, ok := tr.O.(rdf.Literal)
		if !ok {
			t.Fatalf("non-literal object %v", tr.O)
		}
		if dt, ok := want[l.Lexical]; ok {
			found++
			if l.Datatype != dt {
				t.Errorf("lexical %q datatype = %v, want %v", l.Lexical, l.Datatype, dt)
			}
		}
		if l.Lexical == "bonjour" && l.Lang != "fr" {
			t.Errorf("lang = %q", l.Lang)
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d typed literals", found, len(want))
	}
}

func TestBlankNodePropertyList(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:alice ex:address [ ex:city "Athens" ; ex:zip "11527" ] .
`
	ts := mustParse(t, src)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3: %v", len(ts), ts)
	}
	addr, ok := ts[len(ts)-1].O.(rdf.BlankNode)
	if !ok {
		// The bnode triples may come before the linking triple; find it.
		for _, tr := range ts {
			if tr.P == "http://example.org/address" {
				addr, ok = tr.O.(rdf.BlankNode)
			}
		}
	}
	if !ok {
		t.Fatal("no blank node object for ex:address")
	}
	cityFound := false
	for _, tr := range ts {
		if tr.S == addr && tr.P == "http://example.org/city" {
			cityFound = tr.O == rdf.NewLiteral("Athens")
		}
	}
	if !cityFound {
		t.Error("blank node property list did not attach city")
	}
}

func TestBlankNodeSubjectPropertyList(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
[ ex:p ex:o ] ex:q ex:r .
[] ex:standalone ex:v .
`
	ts := mustParse(t, src)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3: %v", len(ts), ts)
	}
}

func TestCollections(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:list ( ex:a ex:b ) .
ex:s ex:empty () .
`
	ts := mustParse(t, src)
	// List of 2: 2 first + 2 rest + 1 link = 5; empty: 1 link = 1.
	if len(ts) != 6 {
		t.Fatalf("got %d triples, want 6: %v", len(ts), ts)
	}
	var emptyObj rdf.Term
	firsts, rests := 0, 0
	for _, tr := range ts {
		switch tr.P {
		case rdf.RDFFirst:
			firsts++
		case rdf.RDFRest:
			rests++
		case "http://example.org/empty":
			emptyObj = tr.O
		}
	}
	if firsts != 2 || rests != 2 {
		t.Errorf("firsts=%d rests=%d", firsts, rests)
	}
	if emptyObj != rdf.RDFNil {
		t.Errorf("empty collection = %v, want rdf:nil", emptyObj)
	}
}

func TestBaseResolution(t *testing.T) {
	src := `
@base <http://example.org/data/page.ttl> .
<#frag> <rel> </abs> .
`
	ts := mustParse(t, src)
	tr := ts[0]
	if tr.S != rdf.IRI("http://example.org/data/page.ttl#frag") {
		t.Errorf("fragment resolution = %v", tr.S)
	}
	if tr.P != rdf.IRI("http://example.org/data/rel") {
		t.Errorf("relative resolution = %v", tr.P)
	}
	if tr.O != rdf.IRI("http://example.org/abs") {
		t.Errorf("absolute-path resolution = %v", tr.O)
	}
}

func TestLongStrings(t *testing.T) {
	src := "@prefix ex: <http://example.org/> .\n" +
		"ex:s ex:p \"\"\"multi\nline \"quoted\" text\"\"\" .\n"
	ts := mustParse(t, src)
	want := "multi\nline \"quoted\" text"
	if got := ts[0].O.(rdf.Literal).Lexical; got != want {
		t.Errorf("long string = %q, want %q", got, want)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
# full line comment
@prefix ex: <http://example.org/> . # trailing
ex:s ex:p ex:o . # done
`
	if ts := mustParse(t, src); len(ts) != 1 {
		t.Errorf("got %d triples, want 1", len(ts))
	}
}

func TestTrailingSemicolon(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:p ex:o ; .
`
	if ts := mustParse(t, src); len(ts) != 1 {
		t.Errorf("got %d triples, want 1", len(ts))
	}
}

func TestUndeclaredPrefixError(t *testing.T) {
	if _, err := ParseString(`nope:s nope:p nope:o .`); err == nil {
		t.Error("expected undeclared-prefix error")
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`@prefix ex <http://e/> .`,                   // missing colon
		`<http://e/s> <http://e/p>`,                  // missing object+dot
		`<http://e/s> <http://e/p> "x"`,              // missing dot
		`<http://e/s> "notapredicate" <o> .`,         // literal predicate
		`<http://e/s> <http://e/p> "unclosed .`,      // unclosed string
		`<http://e/s> <http://e/p> ( <http://e/a> .`, // unclosed collection
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestExtraPrefixes(t *testing.T) {
	ts, err := Parse(`foaf:a foaf:b foaf:c .`, map[string]string{"foaf": "http://xmlns.com/foaf/0.1/"})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if ts[0].S != rdf.IRI("http://xmlns.com/foaf/0.1/a") {
		t.Errorf("extra prefix not applied: %v", ts[0].S)
	}
}

func TestEmptyPrefixLabel(t *testing.T) {
	src := `
@prefix : <http://example.org/> .
:s :p :o .
`
	ts := mustParse(t, src)
	if ts[0].S != rdf.IRI("http://example.org/s") {
		t.Errorf("empty prefix: %v", ts[0].S)
	}
}

func TestLargeDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("@prefix ex: <http://example.org/> .\n")
	for i := 0; i < 5000; i++ {
		b.WriteString("ex:s")
		b.WriteString(strings.Repeat("x", i%3))
		b.WriteString(" ex:p ")
		b.WriteString(`"v" .`)
		b.WriteString("\n")
	}
	ts := mustParse(t, b.String())
	if len(ts) != 5000 {
		t.Errorf("got %d triples, want 5000", len(ts))
	}
}

func TestNestedBlankNodes(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:p [ ex:q [ ex:r "deep" ] ] .
`
	ts := mustParse(t, src)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3", len(ts))
	}
	found := false
	for _, tr := range ts {
		if l, ok := tr.O.(rdf.Literal); ok && l.Lexical == "deep" {
			found = true
		}
	}
	if !found {
		t.Error("nested literal lost")
	}
}

func TestUnicodeInNames(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:Αθήνα ex:étiquette "καλημέρα"@el .
`
	ts := mustParse(t, src)
	if ts[0].S != rdf.IRI("http://example.org/Αθήνα") {
		t.Errorf("unicode subject = %v", ts[0].S)
	}
}
