package turtle

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Write serializes triples as Turtle: prefix directives, subjects grouped
// with ';', objects grouped with ',', and the 'a' shorthand — the compact
// form WoD endpoints and dumps use.
//
// prefixes maps labels to namespaces (may be nil); only prefixes that
// actually shorten an IRI are emitted.
func Write(w io.Writer, triples []rdf.Triple, prefixes map[string]string) error {
	bw := bufio.NewWriter(w)

	// Keep only usable prefixes, longest namespace first so the most
	// specific one wins.
	type pfx struct{ label, ns string }
	var usable []pfx
	for label, ns := range prefixes {
		if label != "" && ns != "" {
			usable = append(usable, pfx{label, ns})
		}
	}
	sort.Slice(usable, func(i, j int) bool { return len(usable[i].ns) > len(usable[j].ns) })

	shorten := func(iri rdf.IRI) (string, bool) {
		s := string(iri)
		for _, p := range usable {
			if strings.HasPrefix(s, p.ns) {
				local := s[len(p.ns):]
				if local != "" && isSafeLocal(local) {
					return p.label + ":" + local, true
				}
			}
		}
		return "", false
	}
	used := map[string]bool{}
	term := func(t rdf.Term) string {
		switch tt := t.(type) {
		case rdf.IRI:
			if short, ok := shorten(tt); ok {
				used[strings.SplitN(short, ":", 2)[0]] = true
				return short
			}
			return tt.String()
		case rdf.Literal:
			// Datatype IRIs can be shortened too.
			if tt.Lang == "" && tt.Datatype != "" && tt.Datatype != rdf.XSDString {
				if short, ok := shorten(tt.Datatype); ok {
					used[strings.SplitN(short, ":", 2)[0]] = true
					return quoteLiteralTurtle(tt.Lexical) + "^^" + short
				}
			}
			return tt.String()
		default:
			return t.String()
		}
	}

	// Group by subject, then predicate, preserving first-seen order.
	type po struct {
		pred rdf.IRI
		objs []rdf.Term
	}
	subjects := map[rdf.Term][]*po{}
	var order []rdf.Term
	for _, t := range triples {
		if !t.Valid() {
			return fmt.Errorf("turtle: cannot serialize invalid triple %v", t)
		}
		pos, ok := subjects[t.S]
		if !ok {
			order = append(order, t.S)
		}
		found := false
		for _, p := range pos {
			if p.pred == t.P {
				p.objs = append(p.objs, t.O)
				found = true
				break
			}
		}
		if !found {
			subjects[t.S] = append(pos, &po{pred: t.P, objs: []rdf.Term{t.O}})
		}
	}

	// Render bodies first so we only declare used prefixes.
	var body strings.Builder
	for _, s := range order {
		body.WriteString(term(s))
		pos := subjects[s]
		for pi, p := range pos {
			if pi == 0 {
				body.WriteByte(' ')
			} else {
				body.WriteString(" ;\n    ")
			}
			if p.pred == rdf.RDFType {
				body.WriteString("a")
			} else {
				body.WriteString(term(rdf.Term(p.pred)))
			}
			for oi, o := range p.objs {
				if oi == 0 {
					body.WriteByte(' ')
				} else {
					body.WriteString(", ")
				}
				body.WriteString(term(o))
			}
		}
		body.WriteString(" .\n")
	}

	var labels []string
	for l := range used {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, p := range usable {
			if p.label == l {
				fmt.Fprintf(bw, "@prefix %s: <%s> .\n", l, p.ns)
			}
		}
	}
	if len(labels) > 0 {
		bw.WriteByte('\n')
	}
	if _, err := bw.WriteString(body.String()); err != nil {
		return fmt.Errorf("turtle: write: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("turtle: flush: %w", err)
	}
	return nil
}

// Format returns the Turtle serialization as a string.
func Format(triples []rdf.Triple, prefixes map[string]string) string {
	var b strings.Builder
	// Write only fails on invalid triples with a strings.Builder sink.
	if err := Write(&b, triples, prefixes); err != nil {
		return ""
	}
	return b.String()
}

// isSafeLocal reports whether a local name can appear un-escaped in a
// prefixed name.
func isSafeLocal(s string) bool {
	if strings.HasSuffix(s, ".") {
		return false
	}
	for _, r := range s {
		if !isPNChar(r) {
			return false
		}
	}
	return true
}

func quoteLiteralTurtle(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
