package turtle

import (
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestWriteGroupsSubjectsAndPredicates(t *testing.T) {
	triples := []rdf.Triple{
		rdf.T(rdf.IRI("http://e/alice"), rdf.RDFType, rdf.IRI("http://e/Person")),
		rdf.T(rdf.IRI("http://e/alice"), "http://e/name", rdf.NewLiteral("Alice")),
		rdf.T(rdf.IRI("http://e/alice"), "http://e/knows", rdf.IRI("http://e/bob")),
		rdf.T(rdf.IRI("http://e/alice"), "http://e/knows", rdf.IRI("http://e/carol")),
	}
	out := Format(triples, map[string]string{"e": "http://e/"})
	if !strings.Contains(out, "@prefix e: <http://e/> .") {
		t.Errorf("missing prefix decl:\n%s", out)
	}
	if !strings.Contains(out, "e:alice a e:Person") {
		t.Errorf("'a' shorthand missing:\n%s", out)
	}
	if !strings.Contains(out, "e:knows e:bob, e:carol") {
		t.Errorf("object list not grouped:\n%s", out)
	}
	if strings.Count(out, "e:alice") != 1 {
		t.Errorf("subject repeated:\n%s", out)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := []rdf.Triple{
		rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.NewLangLiteral("héllo", "en")),
		rdf.T(rdf.IRI("http://e/s"), "http://e/q", rdf.NewInteger(42)),
		rdf.T(rdf.BlankNode("b1"), "http://e/p", rdf.NewLiteral("with \"quotes\" and\nnewline")),
		rdf.T(rdf.IRI("http://e/s"), rdf.RDFType, rdf.IRI("http://e/Thing")),
	}
	out := Format(src, map[string]string{"e": "http://e/", "xsd": rdf.XSDNS})
	got, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(got) != len(src) {
		t.Fatalf("round trip %d != %d triples\n%s", len(got), len(src), out)
	}
	set := map[rdf.Triple]bool{}
	for _, tr := range got {
		set[tr] = true
	}
	for _, tr := range src {
		if !set[tr] {
			t.Errorf("lost triple %v\n%s", tr, out)
		}
	}
}

func TestWriteUnusedPrefixOmitted(t *testing.T) {
	out := Format([]rdf.Triple{
		rdf.T(rdf.IRI("http://other/x"), "http://other/p", rdf.NewLiteral("v")),
	}, map[string]string{"e": "http://e/"})
	if strings.Contains(out, "@prefix") {
		t.Errorf("unused prefix declared:\n%s", out)
	}
	if !strings.Contains(out, "<http://other/x>") {
		t.Errorf("full IRI missing:\n%s", out)
	}
}

func TestWriteUnsafeLocalNameFallsBack(t *testing.T) {
	// Local name ending with '.' cannot be a prefixed name.
	out := Format([]rdf.Triple{
		rdf.T(rdf.IRI("http://e/bad."), "http://e/p", rdf.NewLiteral("v")),
	}, map[string]string{"e": "http://e/"})
	if !strings.Contains(out, "<http://e/bad.>") {
		t.Errorf("unsafe local name not escaped to full IRI:\n%s", out)
	}
}

func TestWriteDatatypeShortening(t *testing.T) {
	out := Format([]rdf.Triple{
		rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.NewInteger(5)),
	}, map[string]string{"xsd": rdf.XSDNS, "e": "http://e/"})
	if !strings.Contains(out, `"5"^^xsd:integer`) {
		t.Errorf("datatype not shortened:\n%s", out)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var b strings.Builder
	err := Write(&b, []rdf.Triple{{S: rdf.NewLiteral("bad"), P: "p", O: rdf.IRI("o")}}, nil)
	if err == nil {
		t.Error("invalid triple accepted")
	}
}

func TestMiniRoundTripThroughWriter(t *testing.T) {
	// Parse a document, re-serialize, re-parse: triple sets must agree.
	src := `
@prefix ex: <http://example.org/> .
ex:a a ex:T ; ex:p "x", "y"@en, 3.5 ; ex:q ex:b .
ex:b ex:p ex:a .
`
	orig := mustParse(t, src)
	out := Format(orig, map[string]string{"ex": "http://example.org/"})
	again, err := ParseString(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(again) != len(orig) {
		t.Fatalf("%d != %d\n%s", len(again), len(orig), out)
	}
}
