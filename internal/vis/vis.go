// Package vis is the visualization abstraction layer: the specification
// types covering every visualization kind catalogued in the survey's
// Tables 1–2, a pixel-budget model (Shneiderman's "squeeze a billion records
// into a million pixels" constraint, ref [119]), and SVG/text renderers so
// render cost is measurable without a browser.
package vis

import (
	"fmt"
	"math"
	"strings"
)

// Type enumerates the visualization types appearing in the survey's tables
// (Table 1 legend: B, C, CI, G, M, P, PC, S, SG, T, TL, TR + derived forms).
type Type int

// Visualization types.
const (
	BarChart Type = iota
	LineChart
	PieChart
	Scatter
	Bubble
	Map
	Treemap
	Timeline
	Tree
	GraphVis
	Circles
	ParallelCoords
	Streamgraph
	Histogram
	Table
)

// String returns the type's display name.
func (t Type) String() string {
	names := [...]string{
		"bar chart", "line chart", "pie chart", "scatter plot", "bubble chart",
		"map", "treemap", "timeline", "tree", "graph", "circles",
		"parallel coordinates", "streamgraph", "histogram", "table",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// DataPoint is one (label, x, y, size) tuple; unused channels are zero.
type DataPoint struct {
	Label string
	X, Y  float64
	Size  float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []DataPoint
}

// Spec is a renderable visualization specification — the "visualization
// abstraction" stage of the LDVM pipeline.
type Spec struct {
	Type   Type
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels (defaults 640×400).
	Width, Height int
}

func (s *Spec) normalize() {
	if s.Width <= 0 {
		s.Width = 640
	}
	if s.Height <= 0 {
		s.Height = 400
	}
}

// PointCount returns the total number of data points in the spec.
func (s *Spec) PointCount() int {
	n := 0
	for _, sr := range s.Series {
		n += len(sr.Points)
	}
	return n
}

// PixelBudget models a display: a spec "fits" when its point count does not
// exceed the available pixels — the visual-scalability constraint that
// forces reduction before rendering.
type PixelBudget struct {
	Width, Height int
}

// Pixels returns the total pixel count.
func (b PixelBudget) Pixels() int { return b.Width * b.Height }

// Fits reports whether the spec's point count is within the budget.
func (b PixelBudget) Fits(s *Spec) bool { return s.PointCount() <= b.Pixels() }

// ReductionFactor returns how many source objects each rendered point must
// stand for when n objects are shown on this budget (≥ 1).
func (b PixelBudget) ReductionFactor(n int) float64 {
	if n <= b.Pixels() {
		return 1
	}
	return float64(n) / float64(b.Pixels())
}

// RenderSVG renders the spec to an SVG document. Supported types: bar
// chart, histogram, line chart, scatter, bubble, pie, timeline; other types
// fall back to scatter-style point marks so every spec renders something
// measurable.
func RenderSVG(s *Spec) string {
	s.normalize()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, s.Width, s.Height)
	fmt.Fprintf(&b, `<title>%s</title>`, escape(s.Title))
	const margin = 40.0
	w := float64(s.Width) - 2*margin
	h := float64(s.Height) - 2*margin
	minX, maxX, minY, maxY := bounds(s)
	sx := func(x float64) float64 {
		if maxX == minX {
			return margin + w/2
		}
		return margin + (x-minX)/(maxX-minX)*w
	}
	sy := func(y float64) float64 {
		if maxY == minY {
			return margin + h/2
		}
		return margin + h - (y-minY)/(maxY-minY)*h
	}
	switch s.Type {
	case BarChart, Histogram:
		for _, sr := range s.Series {
			n := len(sr.Points)
			if n == 0 {
				continue
			}
			bw := w / float64(n) * 0.8
			for i, p := range sr.Points {
				x := margin + (float64(i)+0.1)*w/float64(n)
				y := sy(p.Y)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="steelblue"><title>%s: %g</title></rect>`,
					x, y, bw, margin+h-y, escape(p.Label), p.Y)
			}
		}
	case LineChart, Timeline, Streamgraph:
		for _, sr := range s.Series {
			var pts []string
			for _, p := range sr.Points {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="steelblue" points="%s"/>`, strings.Join(pts, " "))
		}
	case PieChart:
		total := 0.0
		for _, sr := range s.Series {
			for _, p := range sr.Points {
				total += math.Abs(p.Y)
			}
		}
		if total > 0 {
			cx, cy := float64(s.Width)/2, float64(s.Height)/2
			r := math.Min(w, h) / 2
			angle := -math.Pi / 2
			for _, sr := range s.Series {
				for i, p := range sr.Points {
					frac := math.Abs(p.Y) / total
					a2 := angle + frac*2*math.Pi
					large := 0
					if frac > 0.5 {
						large = 1
					}
					fmt.Fprintf(&b,
						`<path d="M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 %.1f,%.1f Z" fill="hsl(%d,60%%,55%%)"><title>%s</title></path>`,
						cx, cy, cx+r*math.Cos(angle), cy+r*math.Sin(angle),
						r, r, large, cx+r*math.Cos(a2), cy+r*math.Sin(a2),
						(i*47)%360, escape(p.Label))
					angle = a2
				}
			}
		}
	default: // Scatter, Bubble, Map, GraphVis, Treemap, ... point marks
		for _, sr := range s.Series {
			for _, p := range sr.Points {
				r := 2.0
				if s.Type == Bubble && p.Size > 0 {
					r = 2 + math.Sqrt(p.Size)
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="steelblue" fill-opacity="0.6"/>`,
					sx(p.X), sy(p.Y), r)
			}
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func bounds(s *Spec) (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	any := false
	for _, sr := range s.Series {
		for _, p := range sr.Points {
			any = true
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if !any {
		return 0, 1, 0, 1
	}
	if minY > 0 && (s.Type == BarChart || s.Type == Histogram) {
		minY = 0 // bars grow from zero
	}
	return
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// formatNum prints integral values without scientific notation (axis labels
// like populations read as 4936349, not 4.936349e+06).
func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// RenderText renders a compact ASCII view (bar charts and histograms as
// horizontal bars, other types as a point summary) for terminal front-ends.
func RenderText(s *Spec) string {
	s.normalize()
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	switch s.Type {
	case BarChart, Histogram, PieChart:
		maxV, maxLabel := 0.0, 0
		for _, sr := range s.Series {
			for _, p := range sr.Points {
				maxV = math.Max(maxV, math.Abs(p.Y))
				if len(p.Label) > maxLabel {
					maxLabel = len(p.Label)
				}
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		for _, sr := range s.Series {
			for _, p := range sr.Points {
				barLen := int(math.Abs(p.Y) / maxV * 40)
				fmt.Fprintf(&b, "%-*s |%s %s\n", maxLabel, p.Label, strings.Repeat("█", barLen), formatNum(p.Y))
			}
		}
	default:
		for _, sr := range s.Series {
			fmt.Fprintf(&b, "series %q: %d points", sr.Name, len(sr.Points))
			if n := len(sr.Points); n > 0 {
				minX, maxX, minY, maxY := bounds(&Spec{Series: []Series{sr}})
				fmt.Fprintf(&b, " x∈[%g,%g] y∈[%g,%g]", minX, maxX, minY, maxY)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
