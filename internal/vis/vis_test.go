package vis

import (
	"strings"
	"testing"
)

func barSpec() *Spec {
	return &Spec{
		Type:  BarChart,
		Title: "Population",
		Series: []Series{{
			Name: "cities",
			Points: []DataPoint{
				{Label: "Athens", Y: 664},
				{Label: "Bordeaux", Y: 252},
			},
		}},
	}
}

func TestTypeString(t *testing.T) {
	for ty := BarChart; ty <= Table; ty++ {
		if ty.String() == "" || strings.HasPrefix(ty.String(), "Type(") {
			t.Errorf("type %d has no name", ty)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown type label wrong")
	}
}

func TestPointCount(t *testing.T) {
	s := barSpec()
	if s.PointCount() != 2 {
		t.Errorf("PointCount = %d", s.PointCount())
	}
}

func TestPixelBudget(t *testing.T) {
	b := PixelBudget{Width: 100, Height: 100}
	if b.Pixels() != 10000 {
		t.Errorf("Pixels = %d", b.Pixels())
	}
	if !b.Fits(barSpec()) {
		t.Error("tiny spec should fit")
	}
	if b.ReductionFactor(5000) != 1 {
		t.Error("under-budget reduction != 1")
	}
	if b.ReductionFactor(1000000) != 100 {
		t.Errorf("reduction = %g, want 100", b.ReductionFactor(1000000))
	}
}

func TestRenderSVGBar(t *testing.T) {
	svg := RenderSVG(barSpec())
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 2 {
		t.Errorf("rect count = %d, want 2", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Athens") {
		t.Error("labels missing")
	}
}

func TestRenderSVGLine(t *testing.T) {
	s := &Spec{Type: LineChart, Series: []Series{{
		Points: []DataPoint{{X: 0, Y: 1}, {X: 1, Y: 3}, {X: 2, Y: 2}},
	}}}
	svg := RenderSVG(s)
	if !strings.Contains(svg, "<polyline") {
		t.Error("no polyline")
	}
}

func TestRenderSVGPie(t *testing.T) {
	s := &Spec{Type: PieChart, Series: []Series{{
		Points: []DataPoint{{Label: "a", Y: 30}, {Label: "b", Y: 70}},
	}}}
	svg := RenderSVG(s)
	if strings.Count(svg, "<path") != 2 {
		t.Errorf("pie slices = %d", strings.Count(svg, "<path"))
	}
}

func TestRenderSVGScatterFallback(t *testing.T) {
	s := &Spec{Type: Scatter, Series: []Series{{
		Points: []DataPoint{{X: 1, Y: 2}, {X: 3, Y: 4}},
	}}}
	svg := RenderSVG(s)
	if strings.Count(svg, "<circle") != 2 {
		t.Errorf("circles = %d", strings.Count(svg, "<circle"))
	}
	// Unknown-ish types also render as points.
	s.Type = Treemap
	if !strings.Contains(RenderSVG(s), "<circle") {
		t.Error("fallback render failed")
	}
}

func TestRenderSVGBubbleSizes(t *testing.T) {
	s := &Spec{Type: Bubble, Series: []Series{{
		Points: []DataPoint{{X: 1, Y: 1, Size: 100}},
	}}}
	svg := RenderSVG(s)
	if !strings.Contains(svg, `r="12.0"`) { // 2 + sqrt(100)
		t.Errorf("bubble radius wrong: %s", svg)
	}
}

func TestRenderSVGEscapesTitles(t *testing.T) {
	s := barSpec()
	s.Title = `<script>"attack" & more</script>`
	svg := RenderSVG(s)
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Error("escaped form missing")
	}
}

func TestRenderSVGEmptySpec(t *testing.T) {
	s := &Spec{Type: Scatter}
	svg := RenderSVG(s)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("empty spec did not render")
	}
}

func TestRenderTextBars(t *testing.T) {
	out := RenderText(barSpec())
	if !strings.Contains(out, "Athens") || !strings.Contains(out, "█") {
		t.Errorf("text render = %q", out)
	}
	// Longest bar belongs to Athens.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var athens, bordeaux int
	for _, l := range lines {
		if strings.Contains(l, "Athens") {
			athens = strings.Count(l, "█")
		}
		if strings.Contains(l, "Bordeaux") {
			bordeaux = strings.Count(l, "█")
		}
	}
	if athens <= bordeaux {
		t.Errorf("bar lengths: athens=%d bordeaux=%d", athens, bordeaux)
	}
}

func TestRenderTextScatterSummary(t *testing.T) {
	s := &Spec{Type: Scatter, Series: []Series{{
		Name:   "pts",
		Points: []DataPoint{{X: 1, Y: 2}, {X: 3, Y: 4}},
	}}}
	out := RenderText(s)
	if !strings.Contains(out, "2 points") {
		t.Errorf("summary = %q", out)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := &Spec{}
	s.normalize()
	if s.Width != 640 || s.Height != 400 {
		t.Errorf("defaults = %dx%d", s.Width, s.Height)
	}
}

func TestFormatNumAvoidsExponent(t *testing.T) {
	s := &Spec{Type: BarChart, Series: []Series{{
		Points: []DataPoint{{Label: "big", Y: 4936349}},
	}}}
	out := RenderText(s)
	if !strings.Contains(out, "4936349") || strings.Contains(out, "e+06") {
		t.Errorf("large value badly formatted: %q", out)
	}
}
