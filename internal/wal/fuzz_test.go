package wal

import (
	"bytes"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

// FuzzWALDecode drives DecodePayload with arbitrary bytes: it must never
// panic, and any payload it accepts must re-encode to the exact same bytes
// (the ledger hashes payloads, so the codec has to be canonical).
func FuzzWALDecode(f *testing.F) {
	f.Add(encodePayload(1, OpAdd, nil))
	f.Add(encodePayload(7, OpDelete, []rdf.Triple{
		{S: rdf.IRI("http://ex/a"), P: "http://ex/p", O: rdf.IRI("http://ex/b")},
	}))
	f.Add(encodePayload(42, OpAdd, []rdf.Triple{
		{S: rdf.BlankNode("b0"), P: "http://ex/p", O: rdf.NewLangLiteral("héllo", "en-GB")},
		{S: rdf.IRI("http://ex/c"), P: "http://ex/q", O: rdf.NewInteger(-9)},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodePayload(data)
		if err != nil {
			return
		}
		re := encodePayload(rec.Seq, rec.Op, rec.Triples)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
