package wal

import (
	"time"

	"github.com/lodviz/lodviz/internal/obs"
)

// Metrics holds the log's instrumentation handles. A nil *Metrics (or the
// zero value's nil handles) disables everything at the cost of one branch
// per event — benchmarks run the log bare.
type Metrics struct {
	// Appends counts Append calls that reached the file; AppendedTriples
	// counts the triples inside them.
	Appends         *obs.Counter
	AppendedTriples *obs.Counter
	// Fsyncs counts leader fsync syscalls; FsyncSeconds is their latency.
	// Under group commit one fsync acknowledges many records, so Fsyncs
	// grows slower than Appends under concurrent load.
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
	// GroupCommitSize observes, per leader fsync, how many records that
	// single syscall made durable.
	GroupCommitSize *obs.Histogram
}

// NewMetrics registers the log's metric families on r and returns the
// handles to pass in Options.Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends:         r.Counter("lodviz_wal_appends_total", "WAL records appended."),
		AppendedTriples: r.Counter("lodviz_wal_appended_triples_total", "Triples carried by appended WAL records."),
		Fsyncs:          r.Counter("lodviz_wal_fsyncs_total", "Leader fsync syscalls issued by group commit."),
		FsyncSeconds:    r.Histogram("lodviz_wal_fsync_seconds", "WAL fsync latency in seconds.", obs.DefBuckets),
		GroupCommitSize: r.Histogram("lodviz_wal_group_commit_records", "Records made durable per leader fsync.", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

// observeAppend records one successful append of n triples.
func (m *Metrics) observeAppend(n int) {
	if m == nil {
		return
	}
	m.Appends.Inc()
	m.AppendedTriples.Add(uint64(n))
}

// observeFsync records one leader fsync: its latency and how many records
// (target − syncedBefore) it made durable.
func (m *Metrics) observeFsync(start time.Time, syncedBefore, target uint64) {
	if m == nil {
		return
	}
	m.Fsyncs.Inc()
	m.FsyncSeconds.ObserveSince(start)
	if target > syncedBefore {
		m.GroupCommitSize.Observe(float64(target - syncedBefore))
	}
}
