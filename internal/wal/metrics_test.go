package wal

import (
	"testing"

	"github.com/lodviz/lodviz/internal/obs"
)

func TestMetricsCountAppendsAndFsyncs(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	l, err := Open(tmpLog(t), Options{Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := l.AppendAdd(mkTriples(2, 0)); err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendAdd(mkTriples(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(seq); err != nil {
		t.Fatal(err)
	}

	if got := met.Appends.Value(); got != 2 {
		t.Errorf("Appends = %d, want 2", got)
	}
	if got := met.AppendedTriples.Value(); got != 5 {
		t.Errorf("AppendedTriples = %d, want 5", got)
	}
	if got := met.Fsyncs.Value(); got != 1 {
		t.Errorf("Fsyncs = %d, want 1", got)
	}
	lat := met.FsyncSeconds.Snapshot()
	if lat.Count != 1 {
		t.Errorf("FsyncSeconds count = %d, want 1", lat.Count)
	}
	// One leader fsync covered both records.
	size := met.GroupCommitSize.Snapshot()
	if size.Count != 1 || size.Sum != 2 {
		t.Errorf("GroupCommitSize count=%d sum=%g, want 1 / 2", size.Count, size.Sum)
	}
}

func TestNilMetricsIsNoOp(t *testing.T) {
	l, err := Open(tmpLog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq, err := l.AppendAdd(mkTriples(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(seq); err != nil {
		t.Fatal(err)
	}
}
