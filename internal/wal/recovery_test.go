package wal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/wal"
)

// This file is the crash-injection suite: every test drives real writes
// through a WAL-attached store, simulates a crash by abandoning the store
// (and optionally mangling the log tail), and asserts that replaying the
// surviving log reconstructs exactly the acknowledged state.

func rtr(s, o string) rdf.Triple {
	return rdf.Triple{S: rdf.IRI("http://r/" + s), P: "http://r/p", O: rdf.NewLiteral(o)}
}

// walStore opens a WAL at path and attaches it to a fresh store.
func walStore(t *testing.T, path string) (*store.Store, *wal.Log) {
	t.Helper()
	log, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	st := store.New()
	st.SetWAL(log)
	return st, log
}

// replayInto applies every surviving WAL record to st, as lodvizd does at
// startup.
func replayInto(t *testing.T, path string, st *store.Store) uint64 {
	t.Helper()
	last, err := wal.Replay(path, func(rec wal.Record) error {
		switch rec.Op {
		case wal.OpAdd:
			_, err := st.AddBatch(rec.Triples)
			return err
		case wal.OpDelete:
			_, err := st.DeleteBatch(rec.Triples)
			return err
		}
		return fmt.Errorf("unknown op %v", rec.Op)
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return last
}

// tripleSet renders a store's live triples in a canonical order.
func tripleSet(st *store.Store) []string {
	var out []string
	for _, tp := range st.Triples() {
		out = append(out, tp.String())
	}
	sort.Strings(out)
	return out
}

func assertSameTriples(t *testing.T, got, want *store.Store) {
	t.Helper()
	g, w := tripleSet(got), tripleSet(want)
	if len(g) != len(w) {
		t.Fatalf("recovered %d triples, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("recovered set diverges at %d: %s != %s", i, g[i], w[i])
		}
	}
}

func TestRecoveryRebuildsIdenticalStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, _ := walStore(t, path)

	// A realistic interleaving: batch inserts, single adds, deletes that
	// hit both merged and delta regions, and a delete of an absent triple.
	var batch []rdf.Triple
	for i := 0; i < 300; i++ {
		batch = append(batch, rtr(fmt.Sprintf("e%d", i), fmt.Sprintf("v%d", i)))
	}
	if _, err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(rtr("late", "x")); err != nil {
		t.Fatal(err)
	}
	var victims []rdf.Triple
	for i := 0; i < 120; i++ {
		victims = append(victims, rtr(fmt.Sprintf("e%d", i), fmt.Sprintf("v%d", i)))
	}
	victims = append(victims, rtr("never", "existed"))
	if n, err := st.DeleteBatch(victims); err != nil || n != 120 {
		t.Fatalf("DeleteBatch = %d, %v; want 120", n, err)
	}
	if !st.Delete(rtr("late", "x")) {
		t.Fatal("Delete(late) = false")
	}

	// Crash: the in-memory store is gone, only the log survives.
	recovered := store.New()
	replayInto(t, path, recovered)
	assertSameTriples(t, recovered, st)
	if recovered.Len() != 180 {
		t.Fatalf("recovered Len = %d, want 180", recovered.Len())
	}
}

func TestRecoveryToleratesTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, log := walStore(t, path)
	for i := 0; i < 10; i++ {
		if err := st.Add(rtr(fmt.Sprintf("e%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if log.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", log.LastSeq())
	}
	log.Close()

	// The crash tears the final record mid-write: chop off its last bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := store.New()
	last := replayInto(t, path, recovered)
	if last != 9 {
		t.Fatalf("replay recovered through seq %d, want 9", last)
	}
	if recovered.Len() != 9 {
		t.Fatalf("recovered %d triples, want 9 (the torn record is lost, the rest intact)", recovered.Len())
	}
	// The torn record was never acknowledged as synced at that length, so
	// losing exactly it — and nothing before it — is the contract.
	for i := 0; i < 9; i++ {
		if !recovered.Contains(rtr(fmt.Sprintf("e%d", i), "v")) {
			t.Fatalf("acknowledged triple e%d lost", i)
		}
	}
}

func TestRecoveryReplayIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, _ := walStore(t, path)
	if _, err := st.AddBatch([]rdf.Triple{rtr("a", "1"), rtr("b", "2"), rtr("c", "3")}); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DeleteBatch([]rdf.Triple{rtr("b", "2")}); err != nil || n != 1 {
		t.Fatalf("DeleteBatch = %d, %v", n, err)
	}

	recovered := store.New()
	replayInto(t, path, recovered)
	once := tripleSet(recovered)
	// A double replay (e.g. a snapshot that already covers a WAL suffix)
	// must be a no-op: re-adding present triples and re-deleting absent
	// ones change nothing.
	replayInto(t, path, recovered)
	twice := tripleSet(recovered)
	if len(once) != len(twice) {
		t.Fatalf("second replay changed the store: %d -> %d triples", len(once), len(twice))
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("second replay changed triple %d: %s -> %s", i, once[i], twice[i])
		}
	}
	assertSameTriples(t, recovered, st)
}

func TestRecoverySnapshotPlusSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, log := walStore(t, path)
	if _, err := st.AddBatch([]rdf.Triple{rtr("a", "1"), rtr("b", "2")}); err != nil {
		t.Fatal(err)
	}

	// Snapshot the store, then truncate the covered records — lodvizd's
	// periodic-save sequence.
	frontier := log.LastSeq()
	var snap bytes.Buffer
	if err := st.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := log.TruncateThrough(frontier); err != nil {
		t.Fatal(err)
	}

	// More writes land after the snapshot, then the process crashes.
	if _, err := st.AddBatch([]rdf.Triple{rtr("c", "3")}); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DeleteBatch([]rdf.Triple{rtr("a", "1")}); err != nil || n != 1 {
		t.Fatalf("DeleteBatch = %d, %v", n, err)
	}

	// Startup: restore the snapshot, replay the WAL suffix over it.
	recovered, err := store.ReadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, path, recovered)
	assertSameTriples(t, recovered, st)
	want := []string{rtr("b", "2").String(), rtr("c", "3").String()}
	sort.Strings(want)
	got := tripleSet(recovered)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("recovered = %v, want %v", got, want)
	}
}

func TestRecoveryAfterConcurrentCommit(t *testing.T) {
	// Concurrent committers share fsyncs through group commit; every write
	// acknowledged to any goroutine must survive replay.
	path := filepath.Join(t.TempDir(), "wal")
	st, _ := walStore(t, path)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.Add(rtr(fmt.Sprintf("w%d-%d", w, i), "v")); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	recovered := store.New()
	replayInto(t, path, recovered)
	if recovered.Len() != writers*per {
		t.Fatalf("recovered %d triples, want %d", recovered.Len(), writers*per)
	}
	assertSameTriples(t, recovered, st)
}
