// Package wal implements the lodviz write-ahead log: an append-only file of
// CRC-framed add/delete batch records that the store appends to before
// applying a mutation, so that every acknowledged write survives a crash and
// replays deterministically over a snapshot restore.
//
// On-disk format — a flat sequence of frames, no header:
//
//	frame    uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE)
//	         of the payload
//	payload  uint64 LE sequence number | op byte (OpAdd/OpDelete) |
//	         uvarint triple count | count × (subject term, predicate term,
//	         object term)
//	term     kind byte (rdf.TermKind) followed by uvarint-length-prefixed
//	         string fields — IRI/blank: one field; literal: lexical,
//	         datatype, lang — the same codec the snapshot dictionary uses
//
// Sequence numbers are assigned at append time and increase by exactly one
// per record; after TruncateThrough the file starts at an arbitrary sequence
// but stays contiguous. Replay treats the first frame that fails length or
// checksum validation as the end of the log (a torn tail from a crash
// mid-append) and ignores everything after it; a frame whose checksum passes
// but whose payload does not decode is reported as corruption instead, since
// fsync never acknowledged half a payload.
//
// Durability contract: Append writes the frame into the OS file; Sync(seq)
// returns once every record up to at least seq is fsynced. Concurrent
// committers group-commit — one leader fsyncs on behalf of every record
// written before the syscall started, and waiters whose sequence is already
// covered return without touching the disk.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Op tags a record as a batch of inserts or a batch of deletes.
type Op uint8

const (
	// OpAdd records triples inserted into the live set.
	OpAdd Op = 1
	// OpDelete records triples removed from the live set.
	OpDelete Op = 2
)

func (op Op) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// SyncPolicy selects when Sync actually reaches the disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging a write (the default; the
	// durability contract above holds).
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs — the OS flushes on its own schedule. Crash
	// durability drops to "whatever the page cache got out"; benchmarks and
	// tests that measure the non-fsync cost use it.
	SyncNone
)

// maxRecordLen bounds one frame's declared payload length; larger values are
// treated as corruption rather than honored as allocations. Ingest bodies
// are capped well below this.
const maxRecordLen = 1 << 28

// ErrCorrupt marks a frame whose checksum passed but whose payload does not
// decode — not a torn tail, an actual format violation.
var ErrCorrupt = errors.New("wal: corrupt record payload")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Record is one decoded log entry.
type Record struct {
	// Seq is the record's sequence number.
	Seq uint64
	// Op says whether Triples were added or deleted.
	Op Op
	// Triples is the batch, in the order it was applied.
	Triples []rdf.Triple
	// Payload is the raw encoded payload (sequence number included) — the
	// bytes the ledger hashes, identical across append and replay.
	Payload []byte
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy; zero value is SyncAlways.
	Sync SyncPolicy
	// Observer, when set, is called with every appended record's sequence
	// number and raw payload, in log order, before Append returns. The
	// mutation ledger hangs off this. The callback runs under the append
	// lock: keep it fast and never call back into the log.
	Observer func(seq uint64, payload []byte)
	// Metrics, when set, receives append/fsync instrumentation (see
	// metrics.go); nil disables it.
	Metrics *Metrics
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	policy   SyncPolicy
	observer func(seq uint64, payload []byte)
	met      *Metrics
	path     string

	mu      sync.Mutex // serializes appends and fd swaps
	f       *os.File
	nextSeq uint64
	written uint64 // highest sequence written into the fd
	closed  bool

	syncMu  sync.Mutex
	syncCv  *sync.Cond
	synced  uint64 // highest sequence covered by a completed fsync
	syncing bool   // a leader's fsync is in flight
}

// Open opens (creating if absent) the log at path, scans it, truncates a
// torn tail if the last frame is incomplete, and positions for appending.
// The next record gets the sequence number after the last surviving one.
func Open(path string, opt Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	lastSeq, valid, err := scanLog(f, nil)
	if err != nil {
		_ = f.Close() // abandoning the fd; the scan error wins
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close() // abandoning the fd; the truncate error wins
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close() // abandoning the fd; the seek error wins
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{
		policy:   opt.Sync,
		observer: opt.Observer,
		met:      opt.Metrics,
		path:     path,
		f:        f,
		nextSeq:  lastSeq + 1,
		written:  lastSeq,
		synced:   lastSeq, // surviving records were durable before we opened
	}
	l.syncCv = sync.NewCond(&l.syncMu)
	return l, nil
}

// LastSeq returns the sequence number of the last record written (not
// necessarily synced); 0 if the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Append encodes one batch record, assigns it the next sequence number, and
// writes its frame into the log file. The record is NOT durable until
// Sync(seq) returns; callers must not acknowledge the write before that.
func (l *Log) Append(op Op, triples []rdf.Triple) (uint64, error) {
	if op != OpAdd && op != OpDelete {
		return 0, fmt.Errorf("wal: invalid op %d", op)
	}
	payload := encodePayload(0, op, triples)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	seq := l.nextSeq
	binary.LittleEndian.PutUint64(payload[:8], seq)

	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(frame); err != nil {
		// The fd may now hold a torn frame; the next open's tail scan drops
		// it. Do not advance the sequence past a record that isn't in the
		// file.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextSeq++
	l.written = seq
	l.met.observeAppend(len(triples))
	if l.observer != nil {
		l.observer(seq, payload)
	}
	return seq, nil
}

// AppendAdd appends an OpAdd record.
func (l *Log) AppendAdd(triples []rdf.Triple) (uint64, error) {
	return l.Append(OpAdd, triples)
}

// AppendDelete appends an OpDelete record.
func (l *Log) AppendDelete(triples []rdf.Triple) (uint64, error) {
	return l.Append(OpDelete, triples)
}

// Sync blocks until every record with sequence ≤ seq is fsynced (under
// SyncAlways; a no-op under SyncNone). Concurrent callers group-commit: the
// first uncovered caller becomes the leader and issues one fsync covering
// everything written before it, and the rest wait on that fsync instead of
// issuing their own.
func (l *Log) Sync(seq uint64) error {
	if l.policy == SyncNone {
		return nil
	}
	l.syncMu.Lock()
	var syncedBefore uint64
	for {
		if l.synced >= seq {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			l.syncing = true
			syncedBefore = l.synced
			break
		}
		// A leader's fsync is in flight; it may already cover seq. Wait for
		// its broadcast and re-check.
		l.syncCv.Wait()
	}
	l.syncMu.Unlock()

	// Leader: fsync covers every record written before the syscall starts.
	l.mu.Lock()
	target := l.written
	f := l.f
	closed := l.closed
	l.mu.Unlock()
	var err error
	if closed {
		err = ErrClosed
	} else {
		start := time.Now()
		err = f.Sync()
		if err == nil {
			l.met.observeFsync(start, syncedBefore, target)
		}
	}

	l.syncMu.Lock()
	l.syncing = false
	if err == nil && target > l.synced {
		l.synced = target
	}
	l.syncCv.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	// target ≥ seq: the caller's record was written before it called Sync.
	return nil
}

// TruncateThrough atomically drops every record with sequence ≤ seq,
// keeping the suffix. The store calls it after a snapshot that is known to
// cover those records. The suffix is rewritten to a temporary file, fsynced,
// and renamed over the log, so a crash at any point leaves either the old
// or the new log — never a mix.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}

	src, err := os.Open(l.path)
	if err != nil {
		return fmt.Errorf("wal: truncate open: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".truncate-*")
	if err != nil {
		_ = src.Close() // abandoning the read fd; the temp error wins
		return fmt.Errorf("wal: truncate temp: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		// Abandoning both files; the caller's error wins and the temp
		// file is removed, so neither close can lose data.
		_ = src.Close()
		_ = tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	_, _, err = scanLog(src, func(rec Record) error {
		if rec.Seq <= seq {
			return nil
		}
		frame := make([]byte, 0, 8+len(rec.Payload))
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.Payload)))
		frame = append(frame, rec.Payload...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(rec.Payload))
		_, werr := tmp.Write(frame)
		return werr
	})
	// Read-side close: every byte that matters already flowed through
	// scanLog, whose error is checked next.
	_ = src.Close()
	if err != nil {
		return fail(fmt.Errorf("wal: truncate rewrite: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("wal: truncate sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("wal: truncate close: %w", err))
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		// The rename happened but its directory entry may not be durable:
		// a crash could resurrect the pre-truncation log. Replay is
		// idempotent, so that is not data loss — but an I/O error on the
		// directory is the disk telling us something; surface it.
		return err
	}

	nf, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		_ = nf.Close() // abandoning the fresh fd; the seek error wins
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	// The old fd's name was renamed away; nothing further can be written
	// through it and its close result is meaningless.
	_ = l.f.Close()
	l.f = nf
	// Everything in the rewritten file went through the temp file's fsync.
	l.syncMu.Lock()
	if l.written > l.synced {
		l.synced = l.written
	}
	l.syncMu.Unlock()
	return nil
}

// Close fsyncs (under SyncAlways) and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.policy == SyncAlways {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	// Release anyone parked behind an in-flight leader.
	l.syncMu.Lock()
	if l.written > l.synced {
		l.synced = l.written
	}
	l.syncCv.Broadcast()
	l.syncMu.Unlock()
	return err
}

// Replay streams every decodable record in the log at path through fn, in
// order, and returns the last sequence number seen (0 for an empty or
// missing log). A torn final frame is silently tolerated; a checksum-valid
// frame with an undecodable payload returns ErrCorrupt; an error from fn
// aborts the replay.
func Replay(path string, fn func(Record) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; scanLog reports read errors
	lastSeq, _, err := scanLog(f, fn)
	return lastSeq, err
}

// scanLog reads frames from r until EOF or the first framing/checksum
// failure (a torn tail), invoking fn — when non-nil — per decoded record. It
// returns the last sequence seen and the byte offset just past the last
// valid frame. Decode failures inside a checksum-valid frame, sequence
// discontinuities, and fn errors are returned as errors.
func scanLog(r io.Reader, fn func(Record) error) (lastSeq uint64, valid int64, err error) {
	br := &countReader{r: r}
	var hdr [4]byte
	var prev uint64
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return prev, valid, nil // clean EOF or torn length prefix
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n < 9 || n > maxRecordLen {
			return prev, valid, nil // absurd length: torn or scribbled tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return prev, valid, nil
		}
		var tr [4]byte
		if _, err := io.ReadFull(br, tr[:]); err != nil {
			return prev, valid, nil
		}
		if binary.LittleEndian.Uint32(tr[:]) != crc32.ChecksumIEEE(payload) {
			return prev, valid, nil
		}
		rec, err := DecodePayload(payload)
		if err != nil {
			return prev, valid, err
		}
		if prev != 0 && rec.Seq != prev+1 {
			return prev, valid, fmt.Errorf("%w: sequence %d after %d", ErrCorrupt, rec.Seq, prev)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return prev, valid, err
			}
		}
		prev = rec.Seq
		valid = br.n
	}
}

// countReader tracks how many bytes have been consumed.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// encodePayload serializes one record payload with the given sequence
// number stamped into the first eight bytes.
func encodePayload(seq uint64, op Op, triples []rdf.Triple) []byte {
	buf := make([]byte, 0, 16+32*len(triples))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, byte(op))
	buf = binary.AppendUvarint(buf, uint64(len(triples)))
	for _, t := range triples {
		buf = appendTerm(buf, t.S)
		buf = appendTerm(buf, t.P)
		buf = appendTerm(buf, t.O)
	}
	return buf
}

func appendTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind()))
	switch v := t.(type) {
	case rdf.IRI:
		buf = appendString(buf, string(v))
	case rdf.BlankNode:
		buf = appendString(buf, string(v))
	case rdf.Literal:
		buf = appendString(buf, v.Lexical)
		buf = appendString(buf, string(v.Datatype))
		buf = appendString(buf, v.Lang)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodePayload decodes one record payload (the bytes between a frame's
// length prefix and checksum). It never panics on malformed input; the fuzz
// target drives it with arbitrary bytes.
func DecodePayload(payload []byte) (Record, error) {
	if len(payload) < 9 {
		return Record{}, fmt.Errorf("%w: payload too short (%d bytes)", ErrCorrupt, len(payload))
	}
	rec := Record{
		Seq:     binary.LittleEndian.Uint64(payload[:8]),
		Op:      Op(payload[8]),
		Payload: payload,
	}
	if rec.Seq == 0 {
		return Record{}, fmt.Errorf("%w: sequence 0", ErrCorrupt)
	}
	if rec.Op != OpAdd && rec.Op != OpDelete {
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[8])
	}
	d := &payloadDecoder{buf: payload, off: 9}
	count, err := d.uvarint()
	if err != nil {
		return Record{}, err
	}
	if count > uint64(len(payload)) { // every triple takes ≥ 6 bytes
		return Record{}, fmt.Errorf("%w: triple count %d exceeds payload", ErrCorrupt, count)
	}
	rec.Triples = make([]rdf.Triple, 0, count)
	for i := uint64(0); i < count; i++ {
		s, err := d.term()
		if err != nil {
			return Record{}, err
		}
		p, err := d.term()
		if err != nil {
			return Record{}, err
		}
		o, err := d.term()
		if err != nil {
			return Record{}, err
		}
		pred, ok := p.(rdf.IRI)
		if !ok {
			return Record{}, fmt.Errorf("%w: predicate is not an IRI", ErrCorrupt)
		}
		t := rdf.Triple{S: s, P: pred, O: o}
		if !t.Valid() {
			return Record{}, fmt.Errorf("%w: invalid triple at index %d", ErrCorrupt, i)
		}
		rec.Triples = append(rec.Triples, t)
	}
	if d.off != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-d.off)
	}
	return rec, nil
}

type payloadDecoder struct {
	buf []byte
	off int
}

func (d *payloadDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("%w: string length %d exceeds payload", ErrCorrupt, n)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *payloadDecoder) term() (rdf.Term, error) {
	if d.off >= len(d.buf) {
		return nil, fmt.Errorf("%w: truncated term", ErrCorrupt)
	}
	kind := d.buf[d.off]
	d.off++
	switch rdf.TermKind(kind) {
	case rdf.KindIRI:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return rdf.IRI(s), nil
	case rdf.KindBlank:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return rdf.BlankNode(s), nil
	case rdf.KindLiteral:
		lex, err := d.str()
		if err != nil {
			return nil, err
		}
		dt, err := d.str()
		if err != nil {
			return nil, err
		}
		lang, err := d.str()
		if err != nil {
			return nil, err
		}
		return rdf.Literal{Lexical: lex, Datatype: rdf.IRI(dt), Lang: lang}, nil
	default:
		return nil, fmt.Errorf("%w: unknown term kind %d", ErrCorrupt, kind)
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Filesystems that reject directory fsync (EINVAL) are treated as
// clean — the rename itself already happened and nothing more can be done —
// but a real I/O error on the directory surfaces to the caller.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // directory unreadable here; the rename still happened
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) {
			return nil
		}
		return fmt.Errorf("wal: directory sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: directory close: %w", cerr)
	}
	return nil
}
