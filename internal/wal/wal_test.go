package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func mkTriples(n, base int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://ex/s%d", base+i)),
			P: "http://ex/p",
			O: rdf.NewInteger(int64(base + i)),
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]rdf.Triple{
		{{S: rdf.IRI("http://ex/a"), P: "http://ex/p", O: rdf.IRI("http://ex/b")}},
		{
			{S: rdf.BlankNode("b1"), P: "http://ex/p", O: rdf.NewLangLiteral("hi", "en")},
			{S: rdf.IRI("http://ex/c"), P: "http://ex/q", O: rdf.NewInteger(42)},
		},
	}
	if seq, err := l.AppendAdd(batches[0]); err != nil || seq != 1 {
		t.Fatalf("AppendAdd = (%d, %v), want (1, nil)", seq, err)
	}
	if seq, err := l.AppendDelete(batches[1]); err != nil || seq != 2 {
		t.Fatalf("AppendDelete = (%d, %v), want (2, nil)", seq, err)
	}
	if err := l.Sync(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []Record
	last, err := Replay(path, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if last != 2 || len(recs) != 2 {
		t.Fatalf("Replay: last=%d records=%d, want 2 and 2", last, len(recs))
	}
	if recs[0].Op != OpAdd || recs[1].Op != OpDelete {
		t.Fatalf("ops = %v, %v", recs[0].Op, recs[1].Op)
	}
	for i, rec := range recs {
		if len(rec.Triples) != len(batches[i]) {
			t.Fatalf("record %d: %d triples, want %d", i, len(rec.Triples), len(batches[i]))
		}
		for j, tr := range rec.Triples {
			if !rdf.Equal(tr.S, batches[i][j].S) || tr.P != batches[i][j].P || !rdf.Equal(tr.O, batches[i][j].O) {
				t.Fatalf("record %d triple %d = %v, want %v", i, j, tr, batches[i][j])
			}
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	last, err := Replay(filepath.Join(t.TempDir(), "nope.wal"), func(Record) error {
		t.Fatal("unexpected record")
		return nil
	})
	if err != nil || last != 0 {
		t.Fatalf("Replay(missing) = (%d, %v), want (0, nil)", last, err)
	}
}

func TestTornTailToleratedAndTruncatedOnOpen(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.AppendAdd(mkTriples(2, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"half-frame": func(b []byte) []byte { return b[:len(b)-7] },
		"length-only": func(b []byte) []byte {
			return append(append([]byte{}, b...), 0x20, 0, 0)
		},
		"bad-crc": func(b []byte) []byte {
			out := append([]byte{}, b...)
			out[len(out)-1] ^= 0xff
			return out
		},
	} {
		t.Run(name, func(t *testing.T) {
			torn := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(torn, mutate(clean), 0o644); err != nil {
				t.Fatal(err)
			}
			count := 0
			last, err := Replay(torn, func(Record) error { count++; return nil })
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			wantRecs := 3
			if name == "half-frame" || name == "bad-crc" {
				wantRecs = 2
			}
			if count != wantRecs || last != uint64(wantRecs) {
				t.Fatalf("Replay: %d records last=%d, want %d", count, last, wantRecs)
			}

			// Reopening truncates the tail and appends continue cleanly.
			l2, err := Open(torn, Options{})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := l2.AppendAdd(mkTriples(1, 99))
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(wantRecs)+1 {
				t.Fatalf("post-recovery seq = %d, want %d", seq, wantRecs+1)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			total := 0
			if _, err := Replay(torn, func(Record) error { total++; return nil }); err != nil {
				t.Fatal(err)
			}
			if total != wantRecs+1 {
				t.Fatalf("after reopen+append: %d records, want %d", total, wantRecs+1)
			}
		})
	}
}

func TestCorruptPayloadIsError(t *testing.T) {
	// A checksum-valid frame with garbage payload must be reported, not
	// silently treated as a torn tail.
	payload := []byte{1, 0, 0, 0, 0, 0, 0, 0, 99 /* bad op */, 0}
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])

	path := tmpLog(t)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, nil); err == nil {
		t.Fatal("Replay accepted a checksum-valid frame with a bad op")
	}
}

func TestTruncateThrough(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.AppendAdd(mkTriples(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	// Appends continue after the truncation point.
	if seq, err := l.AppendAdd(mkTriples(1, 50)); err != nil || seq != 6 {
		t.Fatalf("append after truncate = (%d, %v), want (6, nil)", seq, err)
	}
	if err := l.Sync(6); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var seqs []uint64
	if _, err := Replay(path, func(r Record) error { seqs = append(seqs, r.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 5, 6}
	if len(seqs) != len(want) {
		t.Fatalf("surviving seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("surviving seqs = %v, want %v", seqs, want)
		}
	}

	// TruncateThrough everything → empty log, sequence numbering continues.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if got := l2.LastSeq(); got != 6 {
		t.Fatalf("LastSeq after full truncate = %d, want 6", got)
	}
	if seq, err := l2.AppendAdd(mkTriples(1, 60)); err != nil || seq != 7 {
		t.Fatalf("append after full truncate = (%d, %v), want (7, nil)", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestObserverSeesAppendsInOrder(t *testing.T) {
	path := tmpLog(t)
	var seqs []uint64
	var payloads [][]byte
	l, err := Open(path, Options{Observer: func(seq uint64, payload []byte) {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte{}, payload...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.AppendAdd(mkTriples(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("observer saw %d records, want 4", len(seqs))
	}
	// Replay must hand the ledger byte-identical payloads.
	i := 0
	if _, err := Replay(path, func(r Record) error {
		if r.Seq != seqs[i] || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d: replayed payload differs from observed append", i)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.AppendAdd(mkTriples(1, w*1000+i))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	last, err := Replay(path, func(r Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != writers*perWriter || last != uint64(writers*perWriter) {
		t.Fatalf("replayed %d records last=%d, want %d", count, last, writers*perWriter)
	}
}

func TestSyncNonePolicy(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendAdd(mkTriples(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Replay(path, func(Record) error { count++; return nil }); err != nil || count != 1 {
		t.Fatalf("replay after SyncNone: count=%d err=%v", count, err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAdd(mkTriples(1, 0)); err == nil {
		t.Fatal("append after close succeeded")
	}
}
