// Package lodviz is a scalable exploration and visualization framework for
// the Web of (Big) Linked Data.
//
// It is a full, from-scratch Go implementation of the system design argued
// for in "Exploration and Visualization in the Web of Big Linked Data: A
// Survey of the State of the Art" (Bikakis & Sellis, LWDM/EDBT 2016): an RDF
// substrate (data model, N-Triples/Turtle parsers, dictionary-encoded triple
// store, SPARQL engine) and, on top of it, every technique family the survey
// reviews — hierarchical aggregation (HETree), sampling, binning,
// progressive/incremental computation, adaptive indexing, disk-backed
// spatial graph visualization, supernode abstraction, edge bundling, faceted
// browsing, keyword search, visualization recommendation, caching and
// prefetching, RDF Data Cubes, geospatial exploration, and ontology
// visualization.
//
// The root package is the curated façade; the implementation lives in
// internal/ subpackages. Start with:
//
//	ds, err := lodviz.LoadTurtle(src)
//	res, err := ds.Query(`SELECT ?s WHERE { ?s a <http://...> }`)
//	ex := ds.Explore(lodviz.DefaultPreferences())
//	spec, svg, err := ex.Visualize(`SELECT ?label ?population WHERE { ... }`)
package lodviz

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"github.com/lodviz/lodviz/internal/core"
	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/federation"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/keyword"
	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/registry"
	"github.com/lodviz/lodviz/internal/server"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
	"github.com/lodviz/lodviz/internal/vis"
)

// Re-exported core types. These aliases form the public vocabulary of the
// API; the implementations live in internal packages.
type (
	// Term is an RDF term (IRI, blank node, or literal).
	Term = rdf.Term
	// IRI is an RDF IRI.
	IRI = rdf.IRI
	// Literal is an RDF literal.
	Literal = rdf.Literal
	// BlankNode is an RDF blank node.
	BlankNode = rdf.BlankNode
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Results holds SPARQL query results.
	Results = sparql.Results
	// Binding is one SPARQL solution row.
	Binding = sparql.Binding
	// Explorer is a stateful exploration session.
	Explorer = core.Explorer
	// Preferences configures an exploration session.
	Preferences = core.Preferences
	// VisSpec is a renderable visualization specification.
	VisSpec = vis.Spec
	// VisSeries is one named data series of a spec.
	VisSeries = vis.Series
	// VisPoint is one data point of a series.
	VisPoint = vis.DataPoint
	// VisType enumerates visualization types.
	VisType = vis.Type
	// PixelBudget models the display constraint every view must fit.
	PixelBudget = vis.PixelBudget
	// FacetSession is a faceted-browsing session.
	FacetSession = facet.Session
	// FacetFilter is one conjunctive facet restriction.
	FacetFilter = facet.Filter
	// FacetBatch is one approximate snapshot of a progressive facet scan.
	FacetBatch = facet.Batch
	// FacetEstimate is one facet's progressive distribution estimate.
	FacetEstimate = facet.FacetEstimate
	// FacetValueEstimate is one facet value's progressive count estimate.
	FacetValueEstimate = facet.ValueEstimate
	// Estimate is a CLT-bounded progressive estimate (value ± CI95).
	Estimate = progressive.Estimate
	// Neighborhood is a bounded graph neighborhood around an entity.
	Neighborhood = explore.Neighborhood
	// NeighborEdge is one edge of a Neighborhood.
	NeighborEdge = explore.NeighborEdge
	// NeighborhoodOptions bounds a neighborhood expansion.
	NeighborhoodOptions = explore.NeighborhoodOptions
	// StatsBatch is one approximate snapshot of a progressive stats scan.
	StatsBatch = explore.StatsBatch
	// DatasetStats summarizes a dataset (per-predicate and class counts).
	DatasetStats = store.Stats
	// SearchHit is one keyword-search result.
	SearchHit = keyword.Hit
	// FederationEndpoint is one remote endpoint's health snapshot.
	FederationEndpoint = federation.EndpointStatus
)

// Visualization type constants (the survey's Table-1 catalogue).
const (
	BarChart       = vis.BarChart
	LineChart      = vis.LineChart
	PieChart       = vis.PieChart
	Scatter        = vis.Scatter
	Bubble         = vis.Bubble
	MapVis         = vis.Map
	Treemap        = vis.Treemap
	Timeline       = vis.Timeline
	TreeVis        = vis.Tree
	GraphVis       = vis.GraphVis
	Circles        = vis.Circles
	ParallelCoords = vis.ParallelCoords
	Streamgraph    = vis.Streamgraph
	Histogram      = vis.Histogram
	TableVis       = vis.Table
)

// NewLiteral returns a plain string literal.
func NewLiteral(lexical string) Literal { return rdf.NewLiteral(lexical) }

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Literal { return rdf.NewInteger(v) }

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Literal { return rdf.NewDouble(v) }

// DefaultPreferences returns laptop-scale exploration defaults.
func DefaultPreferences() Preferences { return core.DefaultPreferences() }

// Dataset is a loaded RDF dataset ready for querying and exploration.
type Dataset struct {
	st *store.Store

	// fedMu guards the lazily created federation mesh.
	fedMu sync.Mutex
	mesh  *federation.Mesh

	// kwMu guards the lazily created shared keyword index.
	kwMu sync.Mutex
	kw   *keyword.Lazy
}

// LoadTurtle parses a Turtle document into a dataset.
func LoadTurtle(src string) (*Dataset, error) {
	triples, err := turtle.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	st, err := store.Load(triples)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return &Dataset{st: st}, nil
}

// LoadNTriples streams an N-Triples document into a dataset in bounded
// chunks: the input is decoded and batch-inserted incrementally, so inputs
// far larger than memory-resident slices load without materializing the
// whole parse at once.
func LoadNTriples(r io.Reader) (*Dataset, error) {
	st, err := store.LoadNTriples(r)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return &Dataset{st: st}, nil
}

// FromTriples builds a dataset from in-memory triples.
func FromTriples(triples []Triple) (*Dataset, error) {
	st, err := store.Load(triples)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return &Dataset{st: st}, nil
}

// MiniLOD returns the embedded demonstration dataset (cities, countries,
// people, and a tiny ontology).
func MiniLOD() *Dataset { return &Dataset{st: gen.MiniLODStore()} }

// Len returns the number of triples in the dataset.
func (d *Dataset) Len() int { return d.st.Len() }

// Add inserts a triple (the dynamic-data path: no reload required).
func (d *Dataset) Add(t Triple) error { return d.st.Add(t) }

// AddBatch inserts a batch of triples atomically under one lock
// acquisition, returning how many changed the live triple set. The whole
// batch is validated before anything is applied — on error the dataset is
// untouched — and an effective batch advances the generation exactly once.
// This is the bulk-ingestion path: at scale it is an order of magnitude
// faster than looping over Add.
func (d *Dataset) AddBatch(triples []Triple) (int, error) { return d.st.AddBatch(triples) }

// WriteSnapshot serializes the dataset to w in the versioned, checksummed
// lodviz snapshot format — a consistent point-in-time image that
// ReadSnapshot restores to an identically answering dataset.
func (d *Dataset) WriteSnapshot(w io.Writer) error { return d.st.WriteSnapshot(w) }

// ReadSnapshot restores a dataset previously serialized with WriteSnapshot,
// verifying the embedded checksum.
func ReadSnapshot(r io.Reader) (*Dataset, error) {
	st, err := store.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return &Dataset{st: st}, nil
}

// QueryOptions configure SPARQL evaluation.
type QueryOptions struct {
	// Parallelism is the worker count for basic-graph-pattern evaluation.
	// 0 (the default) selects runtime.NumCPU(); 1 forces sequential
	// evaluation. Every setting returns identical results in identical
	// order — parallelism only changes how fast they arrive.
	Parallelism int
	// Endpoints registers additional remote SPARQL endpoints with the
	// dataset's federation mesh before the query runs, so a SERVICE
	// clause naming them starts with tracked health state. SERVICE works
	// without this — unlisted endpoints are tracked from first use.
	Endpoints []string
}

// Query runs a SPARQL SELECT or ASK query with default options: triple
// patterns are cost-reordered using the store's cardinality statistics and
// evaluated by a parallel worker pool sized to runtime.NumCPU(). SERVICE
// clauses are answered by the dataset's federation mesh (see Federate).
func (d *Dataset) Query(q string) (*Results, error) {
	return sparql.ExecOpts(d.st, q, d.sparqlOptions(QueryOptions{}))
}

// QueryOpts runs a SPARQL query with explicit options:
//
//	res, err := ds.QueryOpts(q, lodviz.QueryOptions{Parallelism: 1}) // sequential
//	res, err := ds.QueryOpts(q, lodviz.QueryOptions{})               // NumCPU workers
func (d *Dataset) QueryOpts(q string, opt QueryOptions) (*Results, error) {
	return sparql.ExecOpts(d.st, q, d.sparqlOptions(opt))
}

// QueryCtx runs a SPARQL query under a context: evaluation stops promptly
// when ctx is cancelled or its deadline expires, returning an error that
// matches both ErrQueryEval and the context error under errors.Is.
func (d *Dataset) QueryCtx(ctx context.Context, q string, opt QueryOptions) (*Results, error) {
	return sparql.ExecCtx(ctx, d.st, q, d.sparqlOptions(opt))
}

// QueryStreamResult summarizes a completed QueryStream evaluation.
type QueryStreamResult struct {
	// Vars are the projected column names (nil for ASK).
	Vars []string
	// Rows counts the rows delivered to the callback.
	Rows int
	// Ask is the answer of an ASK query.
	Ask bool
	// Incremental reports whether rows were delivered while evaluation was
	// still in progress — the early-termination fast path, where a LIMIT
	// also stops the scan as soon as enough rows are out. False means the
	// query's shape (ORDER BY, DISTINCT, grouping, UNION, SERVICE) forced
	// full evaluation before the first row.
	Incremental bool
}

// QueryStream runs a SPARQL query and delivers result rows through fn as
// they are produced, in the same order Query returns them; every call
// receives the projected column names, and fn returns false to stop
// evaluation early. Plain LIMIT/OFFSET queries short-circuit — the first
// rows arrive while the scan is still running and work scales with the
// limit, not the dataset — making this the progressive-delivery primitive
// the survey asks of big-data exploration: a first screenful immediately,
// refinement later. ASK answers land in the summary with no fn calls.
func (d *Dataset) QueryStream(ctx context.Context, q string, opt QueryOptions, fn func(vars []string, row Binding) bool) (*QueryStreamResult, error) {
	stm, err := sparql.PrepareStream(ctx, d.st, q, d.sparqlOptions(opt))
	if err != nil {
		return nil, err
	}
	out := &QueryStreamResult{Vars: stm.Vars(), Incremental: stm.Incremental()}
	if stm.Form() == sparql.FormAsk {
		ans, err := stm.Ask()
		if err != nil {
			return nil, err
		}
		out.Ask = ans
		return out, nil
	}
	if err := stm.Run(func(row Binding) bool {
		out.Rows++
		return fn(out.Vars, row)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// sparqlOptions lowers façade options to engine options, wiring the
// federation mesh in as the SERVICE evaluator.
func (d *Dataset) sparqlOptions(opt QueryOptions) sparql.Options {
	m := d.federation()
	for _, ep := range opt.Endpoints {
		m.AddPeer(ep)
	}
	return sparql.Options{Parallelism: opt.Parallelism, Service: m}
}

// federation returns the dataset's mesh, creating it with defaults on
// first use.
func (d *Dataset) federation() *federation.Mesh {
	d.fedMu.Lock()
	defer d.fedMu.Unlock()
	if d.mesh == nil {
		d.mesh = federation.NewMesh(federation.Options{})
	}
	return d.mesh
}

// Federate registers remote SPARQL endpoints (other lodvizd instances, or
// any SPARQL 1.1 endpoint speaking JSON results) with the dataset's
// federation mesh. Queries may then span datasets with
// SERVICE <endpoint> { ... } clauses; failing endpoints are circuit-broken
// and probed back in, and SERVICE SILENT degrades to the local partial
// result when an endpoint is down.
func (d *Dataset) Federate(endpoints ...string) {
	m := d.federation()
	for _, ep := range endpoints {
		m.AddPeer(ep)
	}
}

// FederationStatus snapshots the health of every remote endpoint the
// dataset federates with.
func (d *Dataset) FederationStatus() []FederationEndpoint {
	return d.federation().Status()
}

// Search ranks entities matching the keyword query by TF-IDF over the
// dataset's literals and IRI local names, returning at most limit hits
// (limit <= 0 selects 10). The underlying inverted index is built lazily
// and rebuilt after writes.
func (d *Dataset) Search(query string, limit int) []SearchHit {
	return d.keywordIndex().Search(query, limit)
}

// Complete returns up to limit indexed tokens beginning with prefix — the
// type-ahead primitive (limit <= 0 selects 10).
func (d *Dataset) Complete(prefix string, limit int) []string {
	return d.keywordIndex().Complete(prefix, limit)
}

func (d *Dataset) keywordIndex() *keyword.Index { return d.lazyKeyword().Index() }

// lazyKeyword returns the dataset's shared lazy keyword index, creating it
// on first use. The HTTP server is handed the same instance (see
// serverConfig), so a dataset serving HTTP keeps one index copy.
func (d *Dataset) lazyKeyword() *keyword.Lazy {
	d.kwMu.Lock()
	defer d.kwMu.Unlock()
	if d.kw == nil {
		d.kw = keyword.NewLazy(d.st)
	}
	return d.kw
}

// Query error classes: every error returned by Query/QueryOpts/QueryCtx
// matches exactly one of these under errors.Is, so callers can distinguish a
// malformed query (the caller's fault) from an evaluation failure without
// string matching.
var (
	// ErrQueryParse classifies SPARQL syntax errors.
	ErrQueryParse = sparql.ErrParse
	// ErrQueryEval classifies evaluation failures, including cancellation
	// and deadline expiry (the context error stays in the Unwrap chain).
	ErrQueryEval = sparql.ErrEval
)

// Generation returns the dataset's content generation — a counter that
// advances on every mutation of the triple set. Results computed between two
// identical Generation readings are still valid; the HTTP server's response
// cache is keyed on it.
func (d *Dataset) Generation() uint64 { return d.st.Generation() }

// Explore starts an exploration session.
func (d *Dataset) Explore(p Preferences) *Explorer { return core.NewExplorer(d.st, p) }

// Facets starts a faceted-browsing session over the dataset's typed
// entities. The session computes distributions in ID space over the store's
// permutation indexes; use its Stream method for progressive, refining
// estimates on large datasets.
func (d *Dataset) Facets() *FacetSession { return facet.NewSession(d.st) }

// ErrNodeNotFound reports that a neighborhood start term does not occur as a
// graph node in the dataset.
var ErrNodeNotFound = explore.ErrNodeNotFound

// Neighborhood expands the bounded graph neighborhood around start directly
// over the ID-space indexes. With opt.Sample > 0 each node's incident edges
// are reservoir-sampled (deterministically per opt.Seed) and the result
// reports the coverage fraction; with Sample == 0 the expansion is exhaustive
// and includes the induced subgraph between reached nodes.
func (d *Dataset) Neighborhood(ctx context.Context, start Term, opt NeighborhoodOptions) (*Neighborhood, error) {
	return explore.FindNeighborhood(ctx, d.st, start, opt)
}

// Stats computes the exact dataset summary (per-predicate triple counts and
// distinct-subject/object counts, class histogram) in one ID-space pass.
func (d *Dataset) Stats() DatasetStats { return d.st.ComputeStats() }

// StreamStats computes the dataset summary progressively: fn receives
// CLT-bounded approximate batches while the scan runs (return false to
// stop), and the returned stats are exact — identical to Stats — when the
// scan completes.
func (d *Dataset) StreamStats(ctx context.Context, fn func(StatsBatch) bool) (DatasetStats, error) {
	return explore.StreamStats(ctx, d.st, 0, 1, fn)
}

// Store exposes the underlying triple store for advanced use (the internal
// API surface; subject to change).
func (d *Dataset) Store() *store.Store { return d.st }

// ServerConfig tunes the HTTP exploration server; see the internal/server
// package docs. The zero value is production-usable.
type ServerConfig = server.Config

// Handler returns an http.Handler serving this dataset: the SPARQL Protocol
// endpoint (/sparql, SERVICE clauses included), its chunked NDJSON twin
// (/sparql/stream, first rows before evaluation finishes), the exploration
// endpoints (/facets, /graph/neighborhood, /hetree, /stats) with progressive
// NDJSON twins (/facets/stream, /stats/stream — approximate batches that
// converge to the exact answer), keyword search
// (/search, /complete), federation health (/federation), N-Triples
// ingestion (POST /triples), and /healthz. Responses are cached in a sharded LRU keyed by
// the normalized request and the dataset generation, so writes invalidate
// cached results automatically; permissive CORS headers let browser UIs
// call every endpoint cross-origin. The server shares the dataset's
// federation mesh, so peers registered with Federate apply to HTTP queries
// too.
func (d *Dataset) Handler(cfg ServerConfig) http.Handler {
	return server.New(d.st, d.serverConfig(cfg)).Handler()
}

// Serve runs the exploration server on addr until ctx is cancelled, then
// shuts down gracefully. It returns nil on a clean shutdown.
func (d *Dataset) Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	return server.New(d.st, d.serverConfig(cfg)).ListenAndServe(ctx, addr)
}

// ServeListener is Serve over an existing listener (useful when the caller
// needs the bound port before serving starts).
func (d *Dataset) ServeListener(ctx context.Context, ln net.Listener, cfg ServerConfig) error {
	return server.New(d.st, d.serverConfig(cfg)).Serve(ctx, ln)
}

// serverConfig defaults the server onto the dataset's federation mesh and
// keyword index, so façade-level Federate registrations, HTTP SERVICE
// evaluation, and /search all share one set of state.
func (d *Dataset) serverConfig(cfg ServerConfig) ServerConfig {
	if cfg.Mesh == nil {
		cfg.Mesh = d.federation()
	}
	if cfg.Keyword == nil {
		cfg.Keyword = d.lazyKeyword()
	}
	return cfg
}

// RenderSVG renders a visualization specification to SVG.
func RenderSVG(s *VisSpec) string { return vis.RenderSVG(s) }

// RenderText renders a visualization specification as terminal text.
func RenderText(s *VisSpec) string { return vis.RenderText(s) }

// Survey-table regeneration (experiments E1 and E2).

// Table1 renders the survey's Table 1 (generic visualization systems) from
// the machine-readable registry.
func Table1() string { return registry.RenderTable1() }

// Table2 renders the survey's Table 2 (graph-based visualization systems).
func Table2() string { return registry.RenderTable2() }

// TableCSV renders a survey table as CSV (1 or 2).
func TableCSV(n int) string {
	switch n {
	case 1:
		return registry.RenderCSV(registry.Table1)
	case 2:
		return registry.RenderCSV(registry.Table2)
	default:
		return ""
	}
}

// Observations renders the survey's Section-4 aggregate observations,
// computed from the registry.
func Observations() string { return registry.RenderObservations() }
