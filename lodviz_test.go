package lodviz

import (
	"strings"
	"testing"
)

func TestLoadTurtleAndQuery(t *testing.T) {
	ds, err := LoadTurtle(`
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:b ex:p ex:c .
`)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d", ds.Len())
	}
	res, err := ds.Query(`SELECT ?x WHERE { ?x <http://example.org/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestLoadTurtleError(t *testing.T) {
	if _, err := LoadTurtle("not turtle at all <"); err == nil {
		t.Error("bad turtle accepted")
	}
}

func TestLoadNTriples(t *testing.T) {
	ds, err := LoadNTriples(strings.NewReader(
		"<http://e/s> <http://e/p> \"v\" .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Errorf("Len = %d", ds.Len())
	}
}

func TestMiniLODExploration(t *testing.T) {
	ds := MiniLOD()
	ex := ds.Explore(DefaultPreferences())
	o := ex.Overview()
	if o.Triples != ds.Len() {
		t.Errorf("overview triples = %d, want %d", o.Triples, ds.Len())
	}
	hits := ex.Search("Bordeaux", 3)
	if len(hits) == 0 {
		t.Error("search found nothing")
	}
}

func TestDynamicAdd(t *testing.T) {
	ds := MiniLOD()
	before := ds.Len()
	err := ds.Add(Triple{
		S: IRI("http://lodviz.example.org/mini/sparti"),
		P: IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
		O: IRI("http://lodviz.example.org/mini/City"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != before+1 {
		t.Error("dynamic add failed")
	}
	res, _ := ds.Query(`
PREFIX ex: <http://lodviz.example.org/mini/>
SELECT ?c WHERE { ?c a ex:City }`)
	if len(res.Rows) != 6 {
		t.Errorf("cities after add = %d", len(res.Rows))
	}
}

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "SynopsViz") || !strings.Contains(t1, "Rhizomer") {
		t.Error("Table1 incomplete")
	}
	t2 := Table2()
	if !strings.Contains(t2, "graphVizdb") || !strings.Contains(t2, "Gephi") {
		t.Error("Table2 incomplete")
	}
	if TableCSV(1) == "" || TableCSV(2) == "" || TableCSV(3) != "" {
		t.Error("TableCSV behavior wrong")
	}
	if !strings.Contains(Observations(), "SynopsViz") {
		t.Error("Observations incomplete")
	}
}

func TestGenerators(t *testing.T) {
	ds, err := GenerateScaleFree(200, 2, 1)
	if err != nil || ds.Len() == 0 {
		t.Fatalf("scale-free: %v", err)
	}
	g := ds.BuildGraph()
	if g.NumNodes() != 200 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	cube, err := GenerateDataCube(5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cubes := cube.Cubes()
	if len(cubes) != 1 {
		t.Fatalf("cubes = %v", cubes)
	}
	c, err := cube.LoadCube(cubes[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Observations) != 15 {
		t.Errorf("observations = %d", len(c.Observations))
	}
	geoDs, err := GenerateGeoPoints(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := geoDs.GeoPoints()
	if len(pts) != 100 {
		t.Errorf("geo points = %d", len(pts))
	}
	bins := GeoBins(pts, 2)
	if len(bins) == 0 || len(bins) > 100 {
		t.Errorf("geo bins = %d", len(bins))
	}
}

func TestGraphPipeline(t *testing.T) {
	ds, _ := GenerateScaleFree(150, 2, 3)
	g := ds.BuildGraph()
	pos := ForceLayout(g, LayoutOptions{Iterations: 10, Seed: 1})
	if len(pos) != g.NumNodes() {
		t.Fatalf("layout size = %d", len(pos))
	}
	h := BuildSupernodes(g, 8, 1)
	v := h.NewView()
	v.ExpandToBudget(30)
	if len(v.Visible) > 30 {
		t.Errorf("budget exceeded: %d", len(v.Visible))
	}
}

func TestClassHierarchy(t *testing.T) {
	ds := MiniLOD()
	h := ds.ClassHierarchy()
	if h.Depth() < 2 {
		t.Errorf("depth = %d", h.Depth())
	}
}

func TestVisualizeEndToEnd(t *testing.T) {
	ds := MiniLOD()
	ex := ds.Explore(DefaultPreferences())
	spec, svg, err := ex.Visualize(`
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE { ?c a ex:City ; rdfs:label ?label ; ex:population ?population . }`)
	if err != nil {
		t.Fatal(err)
	}
	if RenderSVG(spec) != svg {
		t.Error("RenderSVG disagrees with pipeline output")
	}
	if RenderText(spec) == "" {
		t.Error("text rendering empty")
	}
}

func TestQueryOptsParallelismEquivalent(t *testing.T) {
	ds, err := GenerateEntities(EntityOptions{Entities: 2000, CategoryProps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT ?e ?c WHERE { ?e a ?c . ?e <http://lodviz.example.org/prop/cat0> ?v . }`
	seq, err := ds.QueryOpts(q, QueryOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ds.QueryOpts(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := ds.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, other := range []*Results{par, def} {
		if len(other.Rows) != len(seq.Rows) {
			t.Fatalf("variant %d: %d rows, want %d", i, len(other.Rows), len(seq.Rows))
		}
		for j := range seq.Rows {
			for _, v := range seq.Vars {
				if seq.Rows[j][v] != other.Rows[j][v] {
					t.Fatalf("variant %d: row %d differs", i, j)
				}
			}
		}
	}
}
