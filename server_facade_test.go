package lodviz

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

func quietConfig() ServerConfig {
	return ServerConfig{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func waitForServer(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server at %s never became ready", url)
}

func TestQueryTypedErrors(t *testing.T) {
	ds := MiniLOD()
	if _, err := ds.Query("SELECT nope {{{"); !errors.Is(err, ErrQueryParse) {
		t.Fatalf("malformed query error %v does not match ErrQueryParse", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ds.QueryCtx(ctx, "SELECT ?s WHERE { ?s ?p ?o }", QueryOptions{})
	if !errors.Is(err, ErrQueryEval) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query error %v must match ErrQueryEval and context.Canceled", err)
	}
}

func TestGenerationAdvances(t *testing.T) {
	ds := MiniLOD()
	g := ds.Generation()
	if g == 0 {
		t.Fatal("loaded dataset must have a non-zero generation")
	}
	if err := ds.Add(Triple{S: IRI("http://e/s"), P: IRI("http://e/p"), O: NewLiteral("v")}); err != nil {
		t.Fatal(err)
	}
	if ds.Generation() <= g {
		t.Fatalf("generation did not advance on Add: %d -> %d", g, ds.Generation())
	}
}

func TestHandlerEndToEnd(t *testing.T) {
	ds := MiniLOD()
	ts := httptest.NewServer(ds.Handler(quietConfig()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape("ASK { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		Boolean *bool `json:"boolean"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Boolean == nil || !*doc.Boolean {
		t.Fatalf("boolean = %v, want true", doc.Boolean)
	}

	for _, path := range []string{"/stats", "/facets", "/healthz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d, want 200", path, r.StatusCode)
		}
	}
}

func TestServeListenerShutdown(t *testing.T) {
	ds := MiniLOD()
	ctx, cancel := context.WithCancel(context.Background())
	ln := newLocalListener(t)
	done := make(chan error, 1)
	go func() { done <- ds.ServeListener(ctx, ln, quietConfig()) }()
	waitForServer(t, "http://"+ln.Addr().String()+"/healthz")
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v on shutdown, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}
