package lodviz

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/store"
)

// TestSnapshotSurvivesServerRestart is the durability contract end-to-end:
// serve a dataset, ingest triples over HTTP, snapshot it, tear the server
// down ("kill"), restore a fresh dataset from the snapshot file and serve it
// again ("restart") — the restored server must report the same size and
// answer the same queries with the same rows.
func TestSnapshotSurvivesServerRestart(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "store.snap")
	query := "SELECT ?s WHERE { ?s <http://lodviz.example.org/mini/ingested> ?o }"

	// First life: serve, ingest, snapshot, kill.
	ds1 := MiniLOD()
	ts1 := httptest.NewServer(ds1.Handler(quietConfig()))
	nt := strings.Join([]string{
		"<http://e/a> <http://lodviz.example.org/mini/ingested> <http://e/x> .",
		"<http://e/b> <http://lodviz.example.org/mini/ingested> \"value\"@en .",
		"<http://e/c> <http://lodviz.example.org/mini/ingested> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
	}, "\n") + "\n"
	resp, err := http.Post(ts1.URL+"/triples", "application/n-triples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	lenBefore := ds1.Len()
	rowsBefore := httpQuery(t, ts1.URL, query)
	if err := ds1.Store().WriteSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second life: restore from disk, serve again.
	st, err := store.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != lenBefore || ds2.Len() != lenBefore {
		t.Fatalf("restored Len = %d (store) / %d (facade), want %d", st.Len(), ds2.Len(), lenBefore)
	}
	ts2 := httptest.NewServer(ds2.Handler(quietConfig()))
	defer ts2.Close()

	rowsAfter := httpQuery(t, ts2.URL, query)
	if rowsBefore != rowsAfter {
		t.Fatalf("restored server answers differently:\nbefore: %s\nafter:  %s", rowsBefore, rowsAfter)
	}
	// And the restored server keeps accepting writes.
	resp, err = http.Post(ts2.URL+"/triples", "application/n-triples",
		strings.NewReader("<http://e/post-restart> <http://e/p> <http://e/o> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart ingest status = %d", resp.StatusCode)
	}
	if ds2.Len() != lenBefore+1 {
		t.Fatalf("post-restart Len = %d, want %d", ds2.Len(), lenBefore+1)
	}
}

// httpQuery runs a SPARQL query over HTTP and returns the raw results body
// (deterministically ordered by the engine's stable evaluation).
func httpQuery(t *testing.T, base, q string) string {
	t.Helper()
	resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
