package lodviz

import (
	"context"
	"reflect"
	"testing"
)

// TestQueryStreamMatchesQuery: the façade stream delivers exactly the rows
// Query returns, in order, with the header available to every callback.
func TestQueryStreamMatchesQuery(t *testing.T) {
	ds := MiniLOD()
	for _, q := range []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5`,
		`SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s LIMIT 3`,
		`SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 4`,
	} {
		ref, err := ds.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		var rows []Binding
		var vars []string
		res, err := ds.QueryStream(context.Background(), q, QueryOptions{}, func(v []string, row Binding) bool {
			vars = v
			rows = append(rows, row)
			return true
		})
		if err != nil {
			t.Fatalf("QueryStream(%q): %v", q, err)
		}
		if !reflect.DeepEqual(vars, ref.Vars) {
			t.Errorf("%s: vars = %v, want %v", q, vars, ref.Vars)
		}
		if res.Rows != len(ref.Rows) || len(rows) != len(ref.Rows) {
			t.Fatalf("%s: streamed %d rows (summary %d), want %d", q, len(rows), res.Rows, len(ref.Rows))
		}
		for i := range rows {
			if !reflect.DeepEqual(rows[i], ref.Rows[i]) {
				t.Errorf("%s: row %d = %v, want %v", q, i, rows[i], ref.Rows[i])
			}
		}
	}
}

// TestQueryStreamIncrementalAndStop: plain LIMIT shapes report incremental
// delivery, and the consumer can stop the stream early without error.
func TestQueryStreamIncrementalAndStop(t *testing.T) {
	ds := MiniLOD()
	n := 0
	res, err := ds.QueryStream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o }`, QueryOptions{}, func(_ []string, _ Binding) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental {
		t.Error("plain scan should report Incremental")
	}
	if n != 2 || res.Rows != 2 {
		t.Errorf("delivered %d rows (summary %d), want 2", n, res.Rows)
	}

	ordered, err := ds.QueryStream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 2`, QueryOptions{}, func(_ []string, _ Binding) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Incremental {
		t.Error("ORDER BY shape must not report Incremental")
	}
	if ordered.Rows != 2 {
		t.Errorf("ordered stream delivered %d rows, want 2", ordered.Rows)
	}
}

// TestQueryStreamAsk: ASK answers arrive in the summary with no row
// callbacks.
func TestQueryStreamAsk(t *testing.T) {
	ds := MiniLOD()
	called := false
	res, err := ds.QueryStream(context.Background(), `ASK { ?s ?p ?o }`, QueryOptions{}, func(_ []string, _ Binding) bool {
		called = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("ASK must not invoke the row callback")
	}
	if !res.Ask {
		t.Error("Ask = false, want true")
	}
	if res.Vars != nil {
		t.Errorf("ASK vars = %v, want nil", res.Vars)
	}
}

// TestQueryStreamParseError: syntax errors classify as ErrQueryParse.
func TestQueryStreamParseError(t *testing.T) {
	ds := MiniLOD()
	_, err := ds.QueryStream(context.Background(), `SELECT ?s WHERE {`, QueryOptions{}, func(_ []string, _ Binding) bool { return true })
	if err == nil {
		t.Fatal("want parse error")
	}
}
